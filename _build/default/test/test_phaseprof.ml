open Isa

(* A load whose value flips between program halves: windowed profiling
   must show high drift while a stationary load shows none. *)
let phased_program n =
  let b = Asm.create () in
  let cells = Asm.data b [| 111L; 222L |] in
  let constant = Asm.data b [| 7L |] in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 cells;
      Asm.ldi b t2 constant;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t3 t0 (Int64.of_int n);
      Asm.br b Eq t3 "done";
      (* index 0 in the first half, 1 in the second *)
      Asm.cmplti b ~dst:t4 t0 (Int64.of_int (n / 2));
      Asm.xori b ~dst:t4 t4 1L;
      Asm.add b ~dst:t5 t1 t4;
      Asm.ld b ~dst:t6 ~base:t5 ~off:0; (* phased load *)
      Asm.ld b ~dst:t7 ~base:t2 ~off:0; (* stationary load *)
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let points_of prog =
  let t = Phaseprof.run ~config:{ Phaseprof.default_config with window = 1000 }
      ~selection:`Loads prog in
  match Array.to_list t.Phaseprof.points with
  | [ a; b ] -> (t, a, b)
  | other -> Alcotest.failf "expected two load points, got %d" (List.length other)

let test_phased_vs_stationary () =
  let _, phased, stationary = points_of (phased_program 10_000) in
  (* each window sees a single value -> window Inv-Top 1.0; overall 0.5 *)
  Alcotest.(check bool) "phased has high drift" true (phased.ph_drift > 0.4);
  Alcotest.(check (float 1e-9)) "stationary has none" 0. stationary.ph_drift;
  Alcotest.(check (float 1e-9)) "stationary overall" 1.0 stationary.ph_overall

let test_window_accounting () =
  let _, phased, _ = points_of (phased_program 10_000) in
  Alcotest.(check int) "total executions" 10_000 phased.ph_total;
  (* 10000 executions / 1000-wide windows *)
  Alcotest.(check int) "window count" 10 (Array.length phased.ph_windows)

let test_partial_trailing_window () =
  let _, phased, _ = points_of (phased_program 2_500) in
  Alcotest.(check int) "two full + one partial" 3
    (Array.length phased.ph_windows);
  Alcotest.(check int) "all executions counted" 2_500 phased.ph_total

let test_window_cap_merges_tail () =
  let config =
    { Phaseprof.default_config with window = 100; max_windows = 5 }
  in
  let t = Phaseprof.run ~config ~selection:`Loads (phased_program 10_000) in
  Array.iter
    (fun (p : Phaseprof.point) ->
      Alcotest.(check bool) "at most cap+1 windows" true
        (Array.length p.ph_windows <= 6);
      Alcotest.(check int) "nothing lost" 10_000 p.ph_total)
    t.Phaseprof.points

let test_mean_drift_bounds () =
  let t, _, _ = points_of (phased_program 10_000) in
  let d = Phaseprof.mean_drift t in
  Alcotest.(check bool) "in [0,1]" true (d >= 0. && d <= 1.)

let test_invalid_window () =
  Alcotest.check_raises "window"
    (Invalid_argument "Phaseprof: window must be positive") (fun () ->
      ignore
        (Phaseprof.run
           ~config:{ Phaseprof.default_config with window = 0 }
           (phased_program 100)))

let suite =
  [ Alcotest.test_case "phased vs stationary" `Quick test_phased_vs_stationary;
    Alcotest.test_case "window accounting" `Quick test_window_accounting;
    Alcotest.test_case "partial trailing window" `Quick
      test_partial_trailing_window;
    Alcotest.test_case "window cap merges tail" `Quick
      test_window_cap_merges_tail;
    Alcotest.test_case "mean drift bounds" `Quick test_mean_drift_bounds;
    Alcotest.test_case "invalid window" `Quick test_invalid_window ]
