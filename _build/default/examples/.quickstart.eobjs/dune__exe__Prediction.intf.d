examples/prediction.mli:
