examples/sampling.mli:
