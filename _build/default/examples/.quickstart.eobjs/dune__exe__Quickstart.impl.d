examples/quickstart.ml: Array Asm Int64 Isa Metrics Printf Profile Table
