examples/quickstart.mli:
