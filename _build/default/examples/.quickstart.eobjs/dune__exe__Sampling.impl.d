examples/sampling.ml: List Printf Profile Sampler Table Workload Workloads
