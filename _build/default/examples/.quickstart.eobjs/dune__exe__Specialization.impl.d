examples/specialization.ml: Array Int64 Isa Metrics Printf Procprof Specialize Table Workload Workloads
