examples/memory_profile.mli:
