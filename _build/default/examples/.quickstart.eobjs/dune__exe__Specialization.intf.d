examples/specialization.mli:
