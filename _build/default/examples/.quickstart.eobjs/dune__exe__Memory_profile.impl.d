examples/memory_profile.ml: Array Memprof Metrics Printf Table Workload Workloads
