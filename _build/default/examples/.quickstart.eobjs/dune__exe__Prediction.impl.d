examples/prediction.ml: Array Filename Hashtbl List Metrics Option Predictor Printf Profile Profile_io Sys Workload Workloads
