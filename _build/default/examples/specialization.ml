(* Code specialization end to end (the thesis's Chapter X story):

   1. profile the m88ksim workload's procedures,
   2. find the semi-invariant parameter (execute's opcode argument — the
      guest program is ADD-heavy),
   3. clone-and-optimize the procedure under "opcode = ADD" with a guard,
   4. prove the rewritten program computes the same result while
      executing fewer dynamic instructions.

   Run with: dune exec examples/specialization.exe *)

let () =
  let w = Workloads.find "m88ksim" in
  let prog = w.Workload.wbuild Workload.Test in

  (* Step 1: procedure profile, using the workload's declared arities. *)
  let config = { Procprof.default_config with arities = w.Workload.warities } in
  let pp = Procprof.run ~config prog in
  print_endline "--- procedure parameter invariance ---";
  Array.iter
    (fun (r : Procprof.proc_report) ->
      if r.r_calls > 1 then begin
        Printf.printf "%s (%d calls):\n" r.r_name r.r_calls;
        Array.iteri
          (fun i (m : Metrics.t) ->
            Printf.printf "  arg %d: Inv-Top %.1f%% (top value %s)\n" i
              (100. *. m.inv_top)
              (match m.top_values with
               | [||] -> "-"
               | tv -> Int64.to_string (fst tv.(0))))
          r.r_params
      end)
    pp.Procprof.procs;

  (* Step 2: candidates, ranked by the profile. *)
  let candidates = Specialize.candidates pp ~min_calls:100 ~min_inv:0.5 in
  (match candidates with
   | [] -> failwith "no candidates — unexpected for m88ksim"
   | (proc, param, value, inv) :: _ ->
     Printf.printf "\nbest candidate: %s(%s = %Ld) at %.1f%% invariance\n" proc
       (Isa.string_of_reg param) value (100. *. inv);

     (* Step 3: specialize. *)
     let report = Specialize.specialize prog ~proc ~param ~value in
     Printf.printf
       "specialized %s: %d -> %d instructions (%d folded, %d branches, %d dead)\n"
       proc report.Specialize.sp_static_before report.Specialize.sp_static_after
       report.Specialize.sp_folded report.Specialize.sp_branches_resolved
       report.Specialize.sp_dead_removed;

     (* Step 4: differential run. *)
     let equal, before, after =
       Specialize.differential prog report.Specialize.sp_program
     in
     Printf.printf "dynamic instructions: %s -> %s (%+.2f%%)\n"
       (Table.count before) (Table.count after)
       (100. *. float_of_int (after - before) /. float_of_int before);
     Printf.printf "results identical: %b\n" equal;
     if not equal then exit 1)
