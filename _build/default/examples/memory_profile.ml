(* Memory-location value profiling (Chapter VII): the alvinn workload's
   weight arrays never change, so their locations profile as perfectly
   invariant, while the activation buffers vary — the split this example
   makes visible.

   Run with: dune exec examples/memory_profile.exe *)

let () =
  let w = Workloads.find "alvinn" in
  let prog = w.Workload.wbuild Workload.Test in
  let r = Memprof.run prog in
  Printf.printf "%s: %s locations profiled, %s load/store events\n"
    w.Workload.wname
    (Table.count (Array.length r.Memprof.locations))
    (Table.count r.Memprof.tracked_events);
  Printf.printf "locations >=90%% invariant: %.1f%% (by accesses), %.1f%% (by count)\n\n"
    (100. *. Memprof.fraction_invariant r ~threshold:0.9)
    (100. *. Memprof.fraction_invariant ~weighted:false r ~threshold:0.9);

  let show title pred =
    Printf.printf "%s\n" title;
    let shown = ref 0 in
    Array.iter
      (fun (l : Memprof.location) ->
        if !shown < 5 && pred l then begin
          incr shown;
          Printf.printf "  0x%-8Lx %s\n" l.l_addr
            (Metrics.to_string l.l_metrics)
        end)
      r.Memprof.locations;
    print_newline ()
  in
  show "hottest invariant locations (weights):" (fun l ->
      l.l_metrics.Metrics.inv_top >= 0.99);
  show "hottest variant locations (activations):" (fun l ->
      l.l_metrics.Metrics.inv_top < 0.5)
