(* Quickstart: build a small program with the assembler eDSL, run it under
   the value profiler, and inspect a TNV table.

   The program sums a mostly-constant array — the load that reads the
   array is semi-invariant, which is exactly what the profiler detects.

   Run with: dune exec examples/quickstart.exe *)

open Isa

let program () =
  let b = Asm.create () in
  (* an array where 9 out of 10 entries are 42 *)
  let values =
    Array.init 200 (fun i -> if i mod 10 = 0 then Int64.of_int i else 42L)
  in
  let table = Asm.data b values in
  Asm.proc b "sum" (fun b ->
      (* sum(base=a0, n=a1) -> v0 *)
      Asm.ldi b t0 0L; (* index *)
      Asm.ldi b t1 0L; (* accumulator *)
      Asm.label b "loop";
      Asm.sub b ~dst:t2 t0 a1;
      Asm.br b Ge t2 "done";
      Asm.add b ~dst:t3 a0 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0; (* <- the interesting load *)
      Asm.add b ~dst:t1 t1 t4;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.mov b ~dst:v0 t1;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 table;
      Asm.ldi b a1 200L;
      Asm.call b "sum";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let () =
  let prog = program () in
  print_endline "--- program ---";
  print_string (Asm.disassemble prog);

  (* Full value profile of every load. *)
  let profile = Profile.run ~selection:`Loads prog in
  print_endline "--- load profile ---";
  Array.iter
    (fun (p : Profile.point) ->
      let m = p.p_metrics in
      if m.Metrics.total > 0 then begin
        Printf.printf "pc %d (%s): %s\n" p.p_pc (Isa.to_string p.p_instr)
          (Metrics.to_string m);
        Printf.printf "  classification: %s\n"
          (Metrics.string_of_classification (Metrics.classify m));
        print_endline "  TNV table:";
        Array.iter
          (fun (value, count) -> Printf.printf "    %6Ld x %d\n" value count)
          m.Metrics.top_values
      end)
    profile.Profile.points;

  Printf.printf "profiled %s events over %s dynamic instructions\n"
    (Table.count profile.Profile.profiled_events)
    (Table.count profile.Profile.dynamic_instructions)
