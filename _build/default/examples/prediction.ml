(* Value prediction guided by the value profile (the thesis's §II story
   plus the Gabbay [18] classification):

   1. profile a workload,
   2. classify each instruction — last-value-predictable, strided, or
      unpredictable — from its TNV and delta tables,
   3. simulate predictors: unguided LVP/stride/hybrid against a routed
      predictor that consults the profile,
   4. persist the profile to disk and reload it, as a compiler would.

   Run with: dune exec examples/prediction.exe *)

let () =
  let w = Workloads.find "m88ksim" in
  let prog = w.Workload.wbuild Workload.Test in

  (* Step 1+2: profile and classify. *)
  let profile = Profile.run prog in
  let census = Hashtbl.create 4 in
  Array.iter
    (fun (p : Profile.point) ->
      let m = p.Profile.p_metrics in
      if m.Metrics.total > 0 then begin
        let cls = Metrics.predictor_class m in
        Hashtbl.replace census cls
          (m.Metrics.total
           + Option.value ~default:0 (Hashtbl.find_opt census cls))
      end)
    profile.Profile.points;
  print_endline "--- predictability census (by dynamic execution) ---";
  List.iter
    (fun cls ->
      Printf.printf "%-15s %d events\n"
        (Metrics.string_of_predictor_class cls)
        (Option.value ~default:0 (Hashtbl.find_opt census cls)))
    [ Metrics.Last_value; Metrics.Strided; Metrics.Unpredictable ];

  (* Step 3: simulate. *)
  let predictors =
    [ Predictor.lvp ~bits:8 ();
      Predictor.stride ~bits:8 ();
      Predictor.hybrid (Predictor.lvp ~bits:8 ()) (Predictor.stride ~bits:8 ());
      Predictor.routed ~profile
        ~last_value:(Predictor.lvp ~bits:8 ())
        ~strided:(Predictor.stride ~bits:8 ())
        () ]
  in
  print_endline "\n--- predictor simulation ---";
  Printf.printf "%-28s %10s %10s %13s\n" "predictor" "coverage" "accuracy"
    "correct rate";
  List.iter
    (fun (r : Predictor.result) ->
      Printf.printf "%-28s %9.1f%% %9.1f%% %12.1f%%\n" r.pr_name
        (100. *. r.pr_coverage) (100. *. r.pr_accuracy)
        (100. *. r.pr_correct_rate))
    (Predictor.simulate prog predictors);

  (* Step 4: the profile survives a disk round trip. *)
  let path = Filename.temp_file "vprof_example" ".profile" in
  Profile_io.write_file profile path;
  let reloaded = Profile_io.read_file ~program:prog path in
  Printf.printf "\nprofile saved to %s and reloaded (%d points)\n" path
    (Array.length reloaded.Profile.points);
  Sys.remove path
