(* Convergent sampling: sweep the sampler's aggressiveness on one
   workload and print the overhead/accuracy frontier (Chapter VI).

   Run with: dune exec examples/sampling.exe *)

let configs =
  [ ("continuous (burst only)",
     { Sampler.default_config with initial_skip = 0; backoff = 1. });
    ("periodic 1:4",
     { Sampler.default_config with burst = 50; initial_skip = 200; backoff = 1. });
    ("convergent x4", Sampler.default_config);
    ("convergent x16",
     { Sampler.default_config with backoff = 16.; max_skip = 1_000_000 }) ]

let () =
  let w = Workloads.find "compress" in
  let prog = w.Workload.wbuild Workload.Train in
  let full = Profile.run prog in
  Printf.printf "workload: %s (train), %s dynamic instructions\n\n"
    w.Workload.wname
    (Table.count full.Profile.dynamic_instructions);
  Printf.printf "%-28s %12s %10s %10s\n" "sampler" "profiled" "overhead"
    "inv error";
  List.iter
    (fun (name, config) ->
      let sampled = Sampler.run ~config prog in
      Printf.printf "%-28s %12s %9.1f%% %9.2f%%\n" name
        (Table.count sampled.Sampler.profiled_events)
        (100. *. sampled.Sampler.overhead)
        (100. *. Sampler.invariance_error sampled full))
    configs;
  Printf.printf "\n(full profiling recorded %s events)\n"
    (Table.count full.Profile.profiled_events)
