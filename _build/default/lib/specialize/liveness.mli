(** Backward liveness analysis and dead-code elimination over a body.

    The calling convention the analyses rely on (documented in DESIGN.md
    and enforced by the differential tests): across a call only [v0], [sp]
    and memory survive; a procedure's caller reads only [v0] and [sp] after
    return. A fall-through off the end of a body (no [BRet]/[BHalt]) is
    treated as all-registers-live, which is the conservative answer. *)

(** [live_out body] — per instruction, the set of registers (indexed by
    register number) that may be read after it executes. *)
val live_out : Body.t -> bool array array

(** Replace pure instructions whose destination is dead with [BNop],
    iterating to a fixpoint. Returns the new body and the number of
    instructions eliminated. Stores and control flow are never removed. *)
val eliminate_dead : Body.t -> Body.t * int
