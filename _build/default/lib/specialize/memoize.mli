(** Procedure memoization, after Richardson [32] (§IV.C.4): "keeping a
    memoization cache of recently executed function results with their
    inputs". The procedure profile identifies candidates (procedures whose
    argument tuples recur — {!Procprof.proc_report.r_memo_hits}); this
    transform installs the cache.

    The rewrite is append-only, like {!Specialize.specialize}: the
    procedure's first instruction is displaced into a trampoline and its
    entry becomes a jump to a wrapper that probes a direct-mapped cache in
    a freshly reserved memory region. Each cache line holds an occupied
    tag, the argument tuple (compared exactly), and the stored result. On
    a hit the stored result returns immediately; on a miss the wrapper
    calls the original body through the trampoline, then fills the line.

    Soundness requirements (the transform cannot check them; the
    differential harness will expose violations):
    - the procedure must be {e pure modulo read-only memory}: its result
      depends only on its arguments and memory that does not change while
      the program runs, and it has no observable side effects;
    - the usual calling convention (only [v0], [sp], callee-saved
      registers observable to the caller).

    Raises {!Body.Unsupported} under the same structural conditions as
    the specializer (entry is a branch target, body too short). *)

type report = {
  m_proc : string;
  m_arity : int;  (** arguments hashed and compared, 1..6 *)
  m_entries : int;  (** cache lines *)
  m_table_base : int64;  (** reserved memory region *)
  m_wrapper_entry : int;
  m_program : Asm.program;
}

val memoize :
  ?entries:int (** cache lines, a power of two; default 256 *) ->
  Asm.program ->
  proc:string ->
  arity:int ->
  report

(** Run both programs, compare [v0] and memory {e outside} the cache
    region and the stack region (the cache legitimately differs; the
    wrapper's restored spill slots leave residue below the stack pointer
    that is not program output). Returns
    [(equal, icount_original, icount_memoized)]. *)
val differential : ?fuel:int -> Asm.program -> report -> bool * int * int
