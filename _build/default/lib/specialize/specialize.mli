(** Code specialization on a semi-invariant procedure parameter (Ch. X).

    Given a value profile showing that procedure [p]'s parameter is
    semi-invariant with dominant value [v], {!specialize} builds a new
    program containing a specialized clone of [p] optimized under the
    assumption [param = v] (constant propagation, branch resolution, dead
    code elimination, compaction) and a guard at [p]'s entry that
    dispatches to the clone when the assumption holds and to the original
    body otherwise — the paper's "selection mechanism based on the
    invariant variable".

    Mechanics: the original program's code is never shifted (so every
    absolute target, including indirect-call tables, stays valid); the
    procedure's first instruction is displaced into an appended guard
    trampoline. Register [r15] is reserved as the guard's scratch register
    — workload code must not use it. Raises {!Body.Unsupported} when the
    procedure entry is also a branch target (re-dispatching mid-loop would
    be wrong), when the procedure has fewer than two instructions, or when
    a branch leaves the procedure. *)

type report = {
  sp_proc : string;
  sp_param : Isa.reg;
  sp_value : int64;
  sp_static_before : int;  (** instructions in the original body *)
  sp_static_after : int;  (** instructions in the specialized clone *)
  sp_folded : int;
  sp_branches_resolved : int;
  sp_dead_removed : int;
  sp_guard_entry : int;  (** pc of the guard trampoline *)
  sp_spec_entry : int;  (** pc of the specialized body *)
  sp_program : Asm.program;  (** the rewritten program *)
}

val specialize :
  Asm.program -> proc:string -> param:Isa.reg -> value:int64 -> report

(** [candidates profile arities ~min_calls ~min_inv] — (procedure,
    parameter register, dominant value, Inv-Top) tuples worth specializing,
    from a procedure profile: parameters of procedures called at least
    [min_calls] times whose invariance reaches [min_inv]. Sorted by call
    count, descending. *)
val candidates :
  Procprof.t ->
  min_calls:int ->
  min_inv:float ->
  (string * Isa.reg * int64 * float) list

(** Differential harness: run both programs and compare final state
    ([v0] and a memory checksum). Returns [(equal, icount_original,
    icount_specialized)]. *)
val differential : ?fuel:int -> Asm.program -> Asm.program -> bool * int * int
