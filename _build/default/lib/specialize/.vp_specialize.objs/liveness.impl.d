lib/specialize/liveness.ml: Array Body Isa List
