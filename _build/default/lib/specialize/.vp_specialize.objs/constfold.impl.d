lib/specialize/constfold.ml: Array Body Int64 Isa List Queue
