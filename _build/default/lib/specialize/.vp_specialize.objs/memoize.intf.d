lib/specialize/memoize.mli: Asm
