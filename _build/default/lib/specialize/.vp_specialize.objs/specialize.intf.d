lib/specialize/specialize.mli: Asm Isa Procprof
