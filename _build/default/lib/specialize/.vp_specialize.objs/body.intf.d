lib/specialize/body.mli: Asm Isa
