lib/specialize/liveness.mli: Body
