lib/specialize/memoize.ml: Array Asm Body Int64 Isa List Machine Memory
