lib/specialize/constfold.mli: Body Isa
