lib/specialize/body.ml: Array Asm Isa Printf
