lib/specialize/specialize.ml: Array Asm Body Constfold Int64 Isa List Liveness Machine Memory Metrics Procprof
