type target = Local of int | Global of int

type binstr =
  | BOp of Isa.binop * Isa.reg * Isa.operand * Isa.reg
  | BLdi of Isa.reg * int64
  | BLd of Isa.reg * Isa.reg * int
  | BSt of Isa.reg * Isa.reg * int
  | BBr of Isa.cond * Isa.reg * target
  | BJmp of target
  | BJsr of target
  | BJsr_ind of Isa.reg
  | BRet
  | BHalt
  | BNop

type t = binstr array

exception Unsupported of string

let extract (prog : Asm.program) (proc : Asm.proc) =
  let lo = proc.pentry and len = proc.plength in
  let classify_jump t =
    if t >= lo && t < lo + len then Local (t - lo)
    else
      raise
        (Unsupported
           (Printf.sprintf "%s: branch leaves the procedure (target %d)"
              proc.pname t))
  in
  Array.init len (fun i ->
      match prog.code.(lo + i) with
      | Isa.Op (op, ra, ob, rc) -> BOp (op, ra, ob, rc)
      | Isa.Ldi (rd, v) -> BLdi (rd, v)
      | Isa.Ld (rd, rb, off) -> BLd (rd, rb, off)
      | Isa.St (ra, rb, off) -> BSt (ra, rb, off)
      | Isa.Br (c, r, t) -> BBr (c, r, classify_jump t)
      | Isa.Jmp t -> BJmp (classify_jump t)
      | Isa.Jsr t ->
        (* Calls may target any procedure, including this one (recursion). *)
        if t >= lo && t < lo + len then BJsr (Local (t - lo)) else BJsr (Global t)
      | Isa.Jsr_ind r -> BJsr_ind r
      | Isa.Ret -> BRet
      | Isa.Halt -> BHalt
      | Isa.Nop -> BNop)

let relocate body ~base =
  let resolve = function Local i -> base + i | Global t -> t in
  Array.map
    (function
      | BOp (op, ra, ob, rc) -> Isa.Op (op, ra, ob, rc)
      | BLdi (rd, v) -> Isa.Ldi (rd, v)
      | BLd (rd, rb, off) -> Isa.Ld (rd, rb, off)
      | BSt (ra, rb, off) -> Isa.St (ra, rb, off)
      | BBr (c, r, t) -> Isa.Br (c, r, resolve t)
      | BJmp t -> Isa.Jmp (resolve t)
      | BJsr t -> Isa.Jsr (resolve t)
      | BJsr_ind r -> Isa.Jsr_ind r
      | BRet -> Isa.Ret
      | BHalt -> Isa.Halt
      | BNop -> Isa.Nop)
    body

let callee_saved r =
  r = Isa.sp || r = Isa.zero_reg || (r >= Isa.s0 && r <= Isa.s5)

let call_uses = [ Isa.a0; Isa.a1; Isa.a2; Isa.a3; Isa.a4; Isa.a5; Isa.sp ]

let saved_regs = [ Isa.s0; Isa.s1; Isa.s2; Isa.s3; Isa.s4; Isa.s5 ]

let uses = function
  | BOp (_, ra, Isa.Reg rb, _) -> [ ra; rb ]
  | BOp (_, ra, Isa.Imm _, _) -> [ ra ]
  | BLdi _ -> []
  | BLd (_, rb, _) -> [ rb ]
  | BSt (ra, rb, _) -> [ ra; rb ]
  | BBr (_, r, _) -> [ r ]
  | BJmp _ -> []
  | BJsr _ -> call_uses
  | BJsr_ind r -> r :: call_uses
  | BRet -> Isa.v0 :: Isa.sp :: saved_regs
  | BHalt | BNop -> []

let defines = function
  | BOp (_, _, _, rc) -> if rc = Isa.zero_reg then None else Some rc
  | BLdi (rd, _) | BLd (rd, _, _) -> if rd = Isa.zero_reg then None else Some rd
  | BSt _ | BBr _ | BJmp _ | BJsr _ | BJsr_ind _ | BRet | BHalt | BNop -> None

let is_call = function
  | BJsr _ | BJsr_ind _ -> true
  | BOp _ | BLdi _ | BLd _ | BSt _ | BBr _ | BJmp _ | BRet | BHalt | BNop -> false

let successors body i =
  let fall = if i + 1 < Array.length body then [ i + 1 ] else [] in
  match body.(i) with
  | BRet | BHalt -> []
  | BJmp (Local t) -> [ t ]
  | BJmp (Global _) -> []
  | BBr (_, _, Local t) -> t :: fall
  | BBr (_, _, Global _) -> fall
  | BOp _ | BLdi _ | BLd _ | BSt _ | BJsr _ | BJsr_ind _ | BNop -> fall
