let bitset_union dst src =
  let changed = ref false in
  Array.iteri
    (fun i v ->
      if v && not dst.(i) then begin
        dst.(i) <- true;
        changed := true
      end)
    src;
  !changed

let live_in_of body i out =
  let live = Array.copy out in
  (* def kills first, then uses are added (live_in = use ∪ (out \ def)). *)
  (match Body.defines body.(i) with Some rd -> live.(rd) <- false | None -> ());
  if Body.is_call body.(i) then
    (* Every non-callee-saved register is redefined across a call. *)
    for r = 0 to Isa.num_regs - 1 do
      if not (Body.callee_saved r) then live.(r) <- false
    done;
  List.iter (fun r -> live.(r) <- true) (Body.uses body.(i));
  live.(Isa.zero_reg) <- false;
  live

let live_out body =
  let n = Array.length body in
  let out = Array.init n (fun _ -> Array.make Isa.num_regs false) in
  let live_in = Array.init n (fun _ -> Array.make Isa.num_regs false) in
  (* Fall-through off the end is conservatively all-live. *)
  let all_live = Array.make Isa.num_regs true in
  let () = all_live.(Isa.zero_reg) <- false in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let succs = Body.successors body i in
      (match (succs, body.(i)) with
       | [], (Body.BRet | Body.BHalt) -> ()
       | [], _ -> if bitset_union out.(i) all_live then changed := true
       | succs, _ ->
         List.iter
           (fun s -> if bitset_union out.(i) live_in.(s) then changed := true)
           succs);
      let li = live_in_of body i out.(i) in
      if li <> live_in.(i) then begin
        live_in.(i) <- li;
        changed := true
      end
    done
  done;
  out

let removable = function
  | Body.BOp _ | Body.BLdi _ | Body.BLd _ -> true
  | Body.BSt _ | Body.BBr _ | Body.BJmp _ | Body.BJsr _ | Body.BJsr_ind _
  | Body.BRet | Body.BHalt | Body.BNop -> false

let eliminate_pass body =
  let out = live_out body in
  let removed = ref 0 in
  let body' =
    Array.mapi
      (fun i instr ->
        match Body.defines instr with
        | Some rd when removable instr && not out.(i).(rd) ->
          incr removed;
          Body.BNop
        | Some _ | None -> instr)
      body
  in
  (body', !removed)

let eliminate_dead body =
  let rec loop body total =
    let body', removed = eliminate_pass body in
    if removed = 0 then (body', total) else loop body' (total + removed)
  in
  loop body 0
