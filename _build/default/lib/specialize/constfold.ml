type fact = Undef | Const of int64 | Nac

let meet a b =
  match (a, b) with
  | Undef, x | x, Undef -> x
  | Const va, Const vb -> if Int64.equal va vb then a else Nac
  | Nac, _ | _, Nac -> Nac

let entry_env bindings =
  let env = Array.make Isa.num_regs Nac in
  env.(Isa.zero_reg) <- Const 0L;
  List.iter
    (fun (r, v) ->
      if r = Isa.zero_reg then invalid_arg "Constfold: cannot bind the zero register";
      env.(r) <- Const v)
    bindings;
  env

(* Pure evaluation mirroring Machine.eval_binop; None where the machine
   would trap, so folding never hides a run-time trap. *)
let eval op a b =
  match op with
  | Isa.Add -> Some (Int64.add a b)
  | Isa.Sub -> Some (Int64.sub a b)
  | Isa.Mul -> Some (Int64.mul a b)
  | Isa.Div -> if Int64.equal b 0L then None else Some (Int64.div a b)
  | Isa.Rem -> if Int64.equal b 0L then None else Some (Int64.rem a b)
  | Isa.And -> Some (Int64.logand a b)
  | Isa.Or -> Some (Int64.logor a b)
  | Isa.Xor -> Some (Int64.logxor a b)
  | Isa.Sll -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Isa.Srl -> Some (Int64.shift_right_logical a (Int64.to_int b land 63))
  | Isa.Sra -> Some (Int64.shift_right a (Int64.to_int b land 63))
  | Isa.Cmpeq -> Some (if Int64.equal a b then 1L else 0L)
  | Isa.Cmplt -> Some (if Int64.compare a b < 0 then 1L else 0L)
  | Isa.Cmple -> Some (if Int64.compare a b <= 0 then 1L else 0L)
  | Isa.Cmpult -> Some (if Int64.unsigned_compare a b < 0 then 1L else 0L)

let cond_holds c v =
  let s = Int64.compare v 0L in
  match c with
  | Isa.Eq -> s = 0
  | Isa.Ne -> s <> 0
  | Isa.Lt -> s < 0
  | Isa.Le -> s <= 0
  | Isa.Gt -> s > 0
  | Isa.Ge -> s >= 0

let read env r = if r = Isa.zero_reg then Const 0L else env.(r)

let read_operand env = function
  | Isa.Reg r -> read env r
  | Isa.Imm v -> Const v

(* Register facts after executing instruction [i] from in-state [env]. *)
let transfer body i env =
  let env' = Array.copy env in
  (match Body.defines body.(i) with
   | Some rd ->
     let v =
       match body.(i) with
       | Body.BOp (op, ra, ob, _) ->
         (match (read env ra, read_operand env ob) with
          | Const a, Const b -> (match eval op a b with Some v -> Const v | None -> Nac)
          | Undef, _ | _, Undef -> Undef
          | _ -> Nac)
       | Body.BLdi (_, v) -> Const v
       | Body.BLd _ -> Nac
       | _ -> Nac
     in
     env'.(rd) <- v
   | None -> ());
  if Body.is_call body.(i) then
    for r = 0 to Isa.num_regs - 1 do
      if not (Body.callee_saved r) then env'.(r) <- Nac
    done;
  env'.(Isa.zero_reg) <- Const 0L;
  env'

(* Successors actually reachable given the in-state: a branch on a constant
   register realizes only one edge. *)
let realized_successors body i env =
  match body.(i) with
  | Body.BBr (c, r, Body.Local t) ->
    (match read env r with
     | Const v ->
       if cond_holds c v then [ t ]
       else if i + 1 < Array.length body then [ i + 1 ]
       else []
     | Undef | Nac -> Body.successors body i)
  | _ -> Body.successors body i

let analyze body ~entry =
  let n = Array.length body in
  let facts : fact array option array = Array.make n None in
  if n = 0 then facts
  else begin
    facts.(0) <- Some (Array.copy entry);
    let work = Queue.create () in
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      match facts.(i) with
      | None -> ()
      | Some env ->
        let out = transfer body i env in
        List.iter
          (fun s ->
            let merged =
              match facts.(s) with
              | None -> Array.copy out
              | Some cur -> Array.init Isa.num_regs (fun r -> meet cur.(r) out.(r))
            in
            let changed =
              match facts.(s) with
              | None -> true
              | Some cur -> merged <> cur
            in
            if changed then begin
              facts.(s) <- Some merged;
              Queue.add s work
            end)
          (realized_successors body i env)
    done;
    facts
  end

type stats = { folded : int; branches_resolved : int; unreachable : int }

let fold body ~entry =
  let facts = analyze body ~entry in
  let folded = ref 0 and resolved = ref 0 and unreachable = ref 0 in
  let out =
    Array.mapi
      (fun i instr ->
        match facts.(i) with
        | None ->
          incr unreachable;
          Body.BNop
        | Some env ->
          (match instr with
           | Body.BOp (op, ra, ob, rc) when rc <> Isa.zero_reg ->
             (match (read env ra, read_operand env ob) with
              | Const a, Const b ->
                (match eval op a b with
                 | Some v ->
                   incr folded;
                   Body.BLdi (rc, v)
                 | None -> instr)
              | _ -> instr)
           | Body.BBr (c, r, (Body.Local _ as t)) ->
             (match read env r with
              | Const v ->
                incr resolved;
                if cond_holds c v then Body.BJmp t else Body.BNop
              | Undef | Nac -> instr)
           | _ -> instr))
      body
  in
  (out, { folded = !folded; branches_resolved = !resolved; unreachable = !unreachable })
