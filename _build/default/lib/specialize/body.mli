(** Procedure bodies in a form the optimization passes can transform.

    A body is the instruction sequence of one procedure with control-flow
    targets split into [Local] (within the body, expressed as an offset)
    and [Global] (absolute code indices elsewhere — only direct calls may
    leave a body). Extraction fails on procedures whose branches jump
    outside their own body. *)

type target = Local of int | Global of int

type binstr =
  | BOp of Isa.binop * Isa.reg * Isa.operand * Isa.reg
  | BLdi of Isa.reg * int64
  | BLd of Isa.reg * Isa.reg * int
  | BSt of Isa.reg * Isa.reg * int
  | BBr of Isa.cond * Isa.reg * target
  | BJmp of target
  | BJsr of target
  | BJsr_ind of Isa.reg
  | BRet
  | BHalt
  | BNop

type t = binstr array

exception Unsupported of string

(** [extract prog proc] — raises {!Unsupported} when a branch or jump exits
    the procedure. *)
val extract : Asm.program -> Asm.proc -> t

(** [relocate body ~base] converts back to ISA instructions, resolving
    [Local i] to [base + i]. *)
val relocate : t -> base:int -> Isa.instr array

(** The calling convention the analyses assume (workload code must follow
    it; the differential tests check end-to-end):
    - arguments in [a0..a5], result in [v0];
    - [s0..s5] and [sp] are callee-saved — a procedure returns them with
      their values at entry;
    - every other register may be clobbered by a call;
    - a caller reads only [v0], [sp], and the callee-saved registers after
      a call returns;
    - a procedure never reads a caller-saved register it has not itself
      written, other than its declared arguments (so its behaviour cannot
      depend on caller leftovers, and a specialized clone with a smaller
      register footprint is unobservable). *)
val callee_saved : Isa.reg -> bool

(** Registers read by an instruction. Calls conservatively read the
    argument registers and [sp] (indirect calls additionally read the
    target register); [BRet] reads [v0], [sp], and the callee-saved set
    (they flow back to the caller). *)
val uses : binstr -> Isa.reg list

(** Register a body instruction must write, if any ([None] for calls — see
    {!is_call}). *)
val defines : binstr -> Isa.reg option

(** True for calls: analyses treat every non-callee-saved register as
    clobbered across them. *)
val is_call : binstr -> bool

(** Local successor offsets of the instruction at [i] (fall-through and
    local branch targets); empty after [BRet]/[BHalt]. *)
val successors : t -> int -> int list
