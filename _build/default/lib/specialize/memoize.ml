type report = {
  m_proc : string;
  m_arity : int;
  m_entries : int;
  m_table_base : int64;
  m_wrapper_entry : int;
  m_program : Asm.program;
}

let arg_regs = [| Isa.a0; Isa.a1; Isa.a2; Isa.a3; Isa.a4; Isa.a5 |]

let check_entry_not_branch_target (prog : Asm.program) entry =
  Array.iter
    (fun instr ->
      match instr with
      | Isa.Br (_, _, t) | Isa.Jmp t ->
        if t = entry then
          raise
            (Body.Unsupported "memoize: procedure entry is also a branch target")
      | _ -> ())
    prog.code

let next_free_data_address (prog : Asm.program) =
  List.fold_left
    (fun acc (base, words) ->
      let past = Int64.add base (Int64.of_int (Array.length words)) in
      if Int64.compare past acc > 0 then past else acc)
    0x1_0000L prog.data

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* The wrapper, built as a Body with local control flow; [trampoline] is
   the absolute pc of the displaced-first-instruction stub. Uses only
   t-registers, legal because the wrapper runs as the callee. *)
let wrapper_body ~arity ~entries ~line_words ~table_base ~trampoline =
  let open Body in
  let open Isa in
  let code = ref [] in
  let emit i = code := i :: !code in
  let here () = List.length !code in
  (* h = fold of args, in t0 *)
  emit (BOp (Add, arg_regs.(0), Imm 0L, t0));
  for i = 1 to arity - 1 do
    emit (BOp (Mul, t0, Imm 131L, t0));
    emit (BOp (Add, t0, Reg arg_regs.(i), t0))
  done;
  emit (BOp (And, t0, Imm (Int64.of_int (entries - 1)), t0));
  emit (BOp (Mul, t0, Imm (Int64.of_int line_words), t0));
  emit (BLdi (t2, table_base));
  emit (BOp (Add, t2, Reg t0, t1)); (* t1 = line address *)
  (* the misses branch forward to a label we only know at the end; record
     the indices to patch *)
  let miss_patches = ref [] in
  let branch_to_miss cond reg =
    miss_patches := here () :: !miss_patches;
    emit (BBr (cond, reg, Local (-1)))
  in
  emit (BLd (t3, t1, 0)); (* occupied tag *)
  branch_to_miss Eq t3;
  for i = 0 to arity - 1 do
    emit (BLd (t4, t1, 1 + i));
    emit (BOp (Sub, t4, Reg arg_regs.(i), t5));
    branch_to_miss Ne t5
  done;
  (* hit *)
  emit (BLd (v0, t1, 1 + arity));
  emit BRet;
  let miss = here () in
  (* spill the line address and the arguments across the call *)
  let frame = arity + 1 in
  emit (BOp (Sub, sp, Imm (Int64.of_int frame), sp));
  emit (BSt (t1, sp, 0));
  for i = 0 to arity - 1 do
    emit (BSt (arg_regs.(i), sp, 1 + i))
  done;
  emit (BJsr (Global trampoline));
  emit (BLd (t1, sp, 0));
  emit (BLdi (t2, 1L));
  emit (BSt (t2, t1, 0));
  for i = 0 to arity - 1 do
    emit (BLd (t3, sp, 1 + i));
    emit (BSt (t3, t1, 1 + i))
  done;
  emit (BSt (v0, t1, 1 + arity));
  emit (BOp (Add, sp, Imm (Int64.of_int frame), sp));
  emit BRet;
  let body = Array.of_list (List.rev !code) in
  List.iter
    (fun idx ->
      match body.(idx) with
      | BBr (c, r, Local _) -> body.(idx) <- BBr (c, r, Local miss)
      | _ -> assert false)
    !miss_patches;
  body

let memoize ?(entries = 256) (prog : Asm.program) ~proc ~arity =
  if arity < 1 || arity > Array.length arg_regs then
    invalid_arg "Memoize: arity out of range";
  if not (is_power_of_two entries) then
    invalid_arg "Memoize: entries must be a power of two";
  let p = Asm.find_proc prog proc in
  if p.plength < 2 then raise (Body.Unsupported "memoize: procedure too short");
  check_entry_not_branch_target prog p.pentry;
  let line_words = arity + 2 in
  let table_base = next_free_data_address prog in
  let old_len = Array.length prog.code in
  let trampoline = old_len in
  let wrapper_entry = trampoline + 2 in
  let displaced = prog.code.(p.pentry) in
  let stub = [| displaced; Isa.Jmp (p.pentry + 1) |] in
  let wrapper =
    Body.relocate
      (wrapper_body ~arity ~entries ~line_words ~table_base ~trampoline)
      ~base:wrapper_entry
  in
  let code = Array.concat [ Array.copy prog.code; stub; wrapper ] in
  code.(p.pentry) <- Isa.Jmp wrapper_entry;
  let n_procs = Array.length prog.procs in
  let procs =
    Array.append prog.procs
      [| { Asm.pname = proc ^ "__memo"; pentry = trampoline;
           plength = 2 + Array.length wrapper; pindex = n_procs } |]
  in
  let data =
    prog.data @ [ (table_base, Array.make (entries * line_words) 0L) ]
  in
  { m_proc = proc;
    m_arity = arity;
    m_entries = entries;
    m_table_base = table_base;
    m_wrapper_entry = wrapper_entry;
    m_program = { prog with Asm.code; procs; data } }

let mix addr v =
  let h = Int64.mul (Int64.logxor addr 0x9E3779B97F4A7C15L) 0xBF58476D1CE4E5B9L in
  Int64.mul (Int64.logxor h v) 0x94D049BB133111EBL

(* The stack region is excluded along with the cache: the wrapper's spill
   slots leave residue below the restored stack pointer, which is not
   meaningful program output for either version. *)
let stack_region = 0x700_0000L

let checksum_excluding m ~lo ~hi =
  let acc = ref (Machine.reg m Isa.v0) in
  Memory.iter_touched (Machine.memory m) (fun addr v ->
      let in_cache = Int64.compare addr lo >= 0 && Int64.compare addr hi < 0 in
      let in_stack = Int64.compare addr stack_region >= 0 in
      if (not in_cache) && (not in_stack) && not (Int64.equal v 0L) then
        acc := Int64.add !acc (mix addr v));
  !acc

let differential ?fuel original report =
  let lo = report.m_table_base in
  let hi =
    Int64.add lo
      (Int64.of_int (report.m_entries * (report.m_arity + 2)))
  in
  (* the stack red zone the wrapper uses is restored, so it never differs *)
  let m1 = Machine.execute ?fuel original in
  let m2 = Machine.execute ?fuel report.m_program in
  ( Int64.equal (checksum_excluding m1 ~lo ~hi) (checksum_excluding m2 ~lo ~hi),
    Machine.icount m1,
    Machine.icount m2 )
