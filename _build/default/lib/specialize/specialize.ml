type report = {
  sp_proc : string;
  sp_param : Isa.reg;
  sp_value : int64;
  sp_static_before : int;
  sp_static_after : int;
  sp_folded : int;
  sp_branches_resolved : int;
  sp_dead_removed : int;
  sp_guard_entry : int;
  sp_spec_entry : int;
  sp_program : Asm.program;
}

let guard_reg = 15

(* Drop BNop instructions, remapping local targets to the next retained
   instruction at or after the old target. *)
let compact (body : Body.t) : Body.t =
  let n = Array.length body in
  let keep = Array.map (fun i -> i <> Body.BNop) body in
  (* new_index.(i) = position of the next retained instruction >= i. *)
  let new_index = Array.make (n + 1) 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    new_index.(i) <- !count;
    if keep.(i) then incr count
  done;
  new_index.(n) <- !count;
  let remap = function
    | Body.Local t ->
      if new_index.(t) >= !count then
        raise (Body.Unsupported "compact: branch target past the end of the body");
      Body.Local new_index.(t)
    | Body.Global _ as g -> g
  in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then begin
      let instr =
        match body.(i) with
        | Body.BBr (c, r, t) -> Body.BBr (c, r, remap t)
        | Body.BJmp t -> Body.BJmp (remap t)
        | Body.BJsr t -> Body.BJsr (remap t)
        | other -> other
      in
      out := instr :: !out
    end
  done;
  Array.of_list !out

let check_entry_not_branch_target (prog : Asm.program) entry =
  Array.iter
    (fun instr ->
      match instr with
      | Isa.Br (_, _, t) | Isa.Jmp t ->
        if t = entry then
          raise
            (Body.Unsupported
               "specialize: procedure entry is also a branch target")
      | _ -> ())
    prog.code

let specialize (prog : Asm.program) ~proc ~param ~value =
  let p = Asm.find_proc prog proc in
  if p.plength < 2 then
    raise (Body.Unsupported "specialize: procedure too short");
  if param = Isa.zero_reg || param = guard_reg then
    invalid_arg "Specialize: cannot specialize on this register";
  check_entry_not_branch_target prog p.pentry;
  let body = Body.extract prog p in
  (* The specialized clone: fold under [param = value], then clean up. *)
  let entry = Constfold.entry_env [ (param, value) ] in
  let folded_body, fstats = Constfold.fold body ~entry in
  let deadless, dead_removed = Liveness.eliminate_dead folded_body in
  let spec_body = compact deadless in
  (* Layout: original code (entry instruction hijacked), guard trampoline,
     specialized body. *)
  let old_len = Array.length prog.code in
  let guard_entry = old_len in
  let spec_entry = guard_entry + 4 in
  let displaced = prog.code.(p.pentry) in
  let guard =
    [| Isa.Op (Isa.Cmpeq, param, Isa.Imm value, guard_reg);
       Isa.Br (Isa.Ne, guard_reg, spec_entry);
       displaced;
       Isa.Jmp (p.pentry + 1) |]
  in
  (* If the displaced instruction already diverted control (Ret, Jmp, ...),
     the trailing Jmp is unreachable and harmless. *)
  let spec_code = Body.relocate spec_body ~base:spec_entry in
  let code = Array.concat [ Array.copy prog.code; guard; spec_code ] in
  code.(p.pentry) <- Isa.Jmp guard_entry;
  let n_procs = Array.length prog.procs in
  let procs =
    Array.append prog.procs
      [| { Asm.pname = proc ^ "__guard"; pentry = guard_entry; plength = 4;
           pindex = n_procs };
         { Asm.pname = proc ^ "__spec"; pentry = spec_entry;
           plength = Array.length spec_code; pindex = n_procs + 1 } |]
  in
  let sp_program = { prog with Asm.code; procs } in
  { sp_proc = proc;
    sp_param = param;
    sp_value = value;
    sp_static_before = p.plength;
    sp_static_after = Array.length spec_code;
    sp_folded = fstats.Constfold.folded;
    sp_branches_resolved = fstats.Constfold.branches_resolved;
    sp_dead_removed = dead_removed;
    sp_guard_entry = guard_entry;
    sp_spec_entry = spec_entry;
    sp_program }

let arg_regs = [| Isa.a0; Isa.a1; Isa.a2; Isa.a3; Isa.a4; Isa.a5 |]

let candidates (pp : Procprof.t) ~min_calls ~min_inv =
  let acc = ref [] in
  Array.iter
    (fun (r : Procprof.proc_report) ->
      if r.r_calls >= min_calls then
        Array.iteri
          (fun i (m : Metrics.t) ->
            if m.inv_top >= min_inv && Array.length m.top_values > 0 then begin
              let value, _count = m.top_values.(0) in
              acc := (r.r_name, arg_regs.(i), value, m.inv_top) :: !acc
            end)
          r.r_params)
    pp.procs;
  (* procs arrive sorted by call count already; keep that order. *)
  List.rev !acc

let mix addr v =
  let h = Int64.mul (Int64.logxor addr 0x9E3779B97F4A7C15L) 0xBF58476D1CE4E5B9L in
  Int64.mul (Int64.logxor h v) 0x94D049BB133111EBL

let state_checksum m =
  let acc = ref (Machine.reg m Isa.v0) in
  Memory.iter_touched (Machine.memory m) (fun addr v ->
      if not (Int64.equal v 0L) then acc := Int64.add !acc (mix addr v));
  !acc

let differential ?fuel original specialized =
  let m1 = Machine.execute ?fuel original in
  let m2 = Machine.execute ?fuel specialized in
  ( Int64.equal (state_checksum m1) (state_checksum m2),
    Machine.icount m1,
    Machine.icount m2 )
