(** Conditional constant propagation over a procedure body.

    Given entry facts (the specialized parameter is [Const v], everything
    else unknown), propagates constants through ALU operations, resolves
    conditional branches whose register is constant (propagating only along
    the realized edge), and rewrites:
    - foldable ALU instructions into [BLdi] of their result,
    - decided branches into [BJmp] or [BNop],
    - unreachable instructions into [BNop].

    Loads always produce [Nac] (memory contents are not assumed), and calls
    clobber every non-callee-saved register (see {!Body.callee_saved}). *)

type fact =
  | Undef  (** no path reaches with a known binding yet *)
  | Const of int64
  | Nac  (** not-a-constant *)

val meet : fact -> fact -> fact

(** Entry environment helper: all registers [Nac] (the zero register is
    pinned to [Const 0]) except the given bindings. *)
val entry_env : (Isa.reg * int64) list -> fact array

(** In-facts per instruction index; [None] for unreachable instructions. *)
val analyze : Body.t -> entry:fact array -> fact array option array

type stats = {
  folded : int;  (** ALU ops rewritten to load-immediate *)
  branches_resolved : int;
  unreachable : int;  (** instructions turned into [BNop] as dead paths *)
}

val fold : Body.t -> entry:fact array -> Body.t * stats
