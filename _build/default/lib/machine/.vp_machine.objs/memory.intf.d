lib/machine/memory.mli:
