lib/machine/machine.mli: Asm Isa Memory
