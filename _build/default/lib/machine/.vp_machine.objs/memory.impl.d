lib/machine/memory.ml: Array Hashtbl Int64
