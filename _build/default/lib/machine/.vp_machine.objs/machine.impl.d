lib/machine/machine.ml: Array Asm Int64 Isa List Memory Printf
