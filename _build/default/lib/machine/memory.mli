(** Sparse word-addressed 64-bit memory.

    Backed by fixed-size pages allocated on first touch; unwritten words
    read as zero. Addresses are word indices (the whole repository uses
    word, not byte, addressing). *)

type t

val create : unit -> t

(** Number of words per page (an implementation constant, exposed so tests
    can exercise page-boundary behaviour). *)
val page_words : int

val read : t -> int64 -> int64
val write : t -> int64 -> int64 -> unit

(** [load_segment t base words] writes [words] starting at [base]. *)
val load_segment : t -> int64 -> int64 array -> unit

(** Number of pages currently allocated (for footprint reporting). *)
val pages_allocated : t -> int

(** Iterate over every word ever written (in unspecified order), including
    words later overwritten with zero. *)
val iter_touched : t -> (int64 -> int64 -> unit) -> unit

(** Drop all pages, returning to the all-zero state. *)
val clear : t -> unit
