let page_words = 4096

type t = { pages : (int, int64 array) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page_of addr = Int64.to_int (Int64.div addr (Int64.of_int page_words))

let offset_of addr = Int64.to_int (Int64.rem addr (Int64.of_int page_words))

let read t addr =
  if Int64.compare addr 0L < 0 then invalid_arg "Memory.read: negative address";
  match Hashtbl.find_opt t.pages (page_of addr) with
  | None -> 0L
  | Some page -> page.(offset_of addr)

let write t addr v =
  if Int64.compare addr 0L < 0 then invalid_arg "Memory.write: negative address";
  let key = page_of addr in
  let page =
    match Hashtbl.find_opt t.pages key with
    | Some page -> page
    | None ->
      let page = Array.make page_words 0L in
      Hashtbl.replace t.pages key page;
      page
  in
  page.(offset_of addr) <- v

let load_segment t base words =
  Array.iteri (fun i v -> write t (Int64.add base (Int64.of_int i)) v) words

let pages_allocated t = Hashtbl.length t.pages

let iter_touched t f =
  Hashtbl.iter
    (fun key page ->
      let base = Int64.mul (Int64.of_int key) (Int64.of_int page_words) in
      Array.iteri (fun i v -> f (Int64.add base (Int64.of_int i)) v) page)
    t.pages

let clear t = Hashtbl.reset t.pages
