type t = {
  total : int;
  lvp : float;
  inv_top : float;
  inv_all : float;
  zero : float;
  distinct : int;
  distinct_saturated : bool;
  top_values : (int64 * int) array;
  stride_top : float;
  top_stride : int64 option;
}

let empty =
  { total = 0; lvp = 0.; inv_top = 0.; inv_all = 0.; zero = 0.; distinct = 0;
    distinct_saturated = false; top_values = [||]; stride_top = 0.;
    top_stride = None }

type classification = Invariant | Semi_invariant | Variant

let classify ?(invariant_at = 0.9) ?(semi_at = 0.5) m =
  if m.inv_top >= invariant_at then Invariant
  else if m.inv_top >= semi_at then Semi_invariant
  else Variant

let string_of_classification = function
  | Invariant -> "invariant"
  | Semi_invariant -> "semi-invariant"
  | Variant -> "variant"

type predictor_class = Last_value | Strided | Unpredictable

let predictor_class ?(threshold = 0.5) m =
  (* A dominant zero stride IS last-value behaviour, so check the value
     table first; a dominant non-zero stride wants a stride predictor. *)
  if m.inv_top >= threshold || m.lvp >= threshold then Last_value
  else
    match m.top_stride with
    | Some s when (not (Int64.equal s 0L)) && m.stride_top >= threshold ->
      Strided
    | Some _ | None -> Unpredictable

let string_of_predictor_class = function
  | Last_value -> "last-value"
  | Strided -> "strided"
  | Unpredictable -> "unpredictable"

let weighted_mean field points =
  let num = ref 0. and den = ref 0. in
  List.iter
    (fun m ->
      let w = float_of_int m.total in
      num := !num +. (field m *. w);
      den := !den +. w)
    points;
  if !den = 0. then 0. else !num /. !den

let to_string m =
  Printf.sprintf
    "execs %d  LVP %.1f%%  InvTop %.1f%%  InvAll %.1f%%  zero %.1f%%  diff %d%s"
    m.total (100. *. m.lvp) (100. *. m.inv_top) (100. *. m.inv_all)
    (100. *. m.zero) m.distinct
    (if m.distinct_saturated then "+" else "")
