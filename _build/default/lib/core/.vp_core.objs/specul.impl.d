lib/core/specul.ml: Array Atom Hashtbl Int64 List Machine Option
