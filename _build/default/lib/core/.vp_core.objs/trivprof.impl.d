lib/core/trivprof.ml: Array Asm Hashtbl Int64 Isa List Machine
