lib/core/specul.mli: Asm Machine
