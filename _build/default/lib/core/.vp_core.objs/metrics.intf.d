lib/core/metrics.mli:
