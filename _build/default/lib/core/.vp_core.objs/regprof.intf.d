lib/core/regprof.mli: Asm Isa Machine Metrics Vstate
