lib/core/regprof.ml: Array Asm Atom Isa List Machine Metrics Vstate
