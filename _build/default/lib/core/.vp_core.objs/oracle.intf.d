lib/core/oracle.mli:
