lib/core/oracle.ml: Array Hashtbl
