lib/core/phaseprof.ml: Array Asm Atom Isa List Machine Vstate
