lib/core/procprof.mli: Asm Machine Metrics Vstate
