lib/core/ctxprof.ml: Array Atom Hashtbl Isa List Machine Metrics Option Procprof Vstate
