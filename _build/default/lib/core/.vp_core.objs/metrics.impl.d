lib/core/metrics.ml: Int64 List Printf
