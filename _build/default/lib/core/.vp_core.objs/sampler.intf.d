lib/core/sampler.mli: Asm Atom Isa Machine Metrics Profile Vstate
