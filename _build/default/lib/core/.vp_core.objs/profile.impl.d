lib/core/profile.ml: Array Asm Atom Isa List Machine Metrics Vstate
