lib/core/memprof.ml: Array Atom Hashtbl List Machine Metrics Vstate
