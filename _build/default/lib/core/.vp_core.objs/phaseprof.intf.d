lib/core/phaseprof.mli: Asm Atom Isa Machine Vstate
