lib/core/ctxprof.mli: Asm Machine Metrics Procprof Vstate
