lib/core/memprof.mli: Asm Machine Metrics Vstate
