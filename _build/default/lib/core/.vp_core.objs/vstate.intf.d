lib/core/vstate.mli: Metrics Tnv
