lib/core/trivprof.mli: Asm Machine
