lib/core/profile_io.ml: Array Asm Buffer Fun Int64 Isa List Metrics Printf Profile String
