lib/core/procprof.ml: Array Asm Atom Hashtbl Isa List Machine Metrics Vstate
