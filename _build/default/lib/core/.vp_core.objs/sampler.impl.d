lib/core/sampler.ml: Array Asm Atom Int64 Isa List Machine Metrics Profile Stats Vstate
