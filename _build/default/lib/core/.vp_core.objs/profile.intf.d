lib/core/profile.mli: Asm Atom Isa Machine Metrics Vstate
