lib/core/profile_io.mli: Asm Profile
