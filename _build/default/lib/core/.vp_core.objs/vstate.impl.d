lib/core/vstate.ml: Hashtbl Int64 Metrics Option Tnv
