(** Exact value profile: a full value→count map, affordable in a simulator
    though not in the paper's production setting. Serves as ground truth
    when measuring how accurately the bounded TNV table (E07) and its
    replacement policies (E08) identify top values and invariance. *)

type t

val create : unit -> t
val observe : t -> int64 -> unit
val total : t -> int
val distinct : t -> int

(** Most frequent value and its count. *)
val top : t -> (int64 * int) option

(** [top_n t n] — the [n] most frequent values, descending by count. *)
val top_n : t -> int -> (int64 * int) array

(** Exact Inv-Top. *)
val inv_top : t -> float

(** Exact Inv-All for a table of capacity [n] with perfect replacement. *)
val inv_all : t -> n:int -> float
