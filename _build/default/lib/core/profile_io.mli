(** Profile persistence.

    Value profiles are gathered once and consumed later — by a compiler
    doing specialization, by a simulator configuring predictors — so they
    need a durable form. This is a line-oriented text format (stable,
    diffable, greppable):

    {v
    vprof-profile 1
    meta instrumented=52 events=145011 dynamic=204852
    point pc=12 proc=compress total=3999 lvp=0.25 ... stride=none
    tv 42 1800
    tv 7 120
    v}

    Loading re-attaches the points to a program (the same workload build),
    re-deriving each point's instruction and validating that every saved
    pc is a value-producing instruction of that program. *)

val to_string : Profile.t -> string

val write_file : Profile.t -> string -> unit

(** Raises [Failure] with a line-numbered message on malformed input, an
    unsupported version, or a pc that is not a value-producing instruction
    of [program]. *)
val of_string : program:Asm.program -> string -> Profile.t

val read_file : program:Asm.program -> string -> Profile.t
