type t = { counts : (int64, int ref) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 64; total = 0 }

let observe t v =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counts v with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts v (ref 1)

let total t = t.total

let distinct t = Hashtbl.length t.counts

let sorted t =
  let arr =
    Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.counts []
    |> Array.of_list
  in
  Array.sort (fun (_, a) (_, b) -> compare b a) arr;
  arr

let top t =
  Hashtbl.fold
    (fun v r best ->
      match best with
      | Some (_, c) when c >= !r -> best
      | _ -> Some (v, !r))
    t.counts None

let top_n t n =
  let arr = sorted t in
  Array.sub arr 0 (min n (Array.length arr))

let inv_top t =
  if t.total = 0 then 0.
  else
    match top t with
    | None -> 0.
    | Some (_, c) -> float_of_int c /. float_of_int t.total

let inv_all t ~n =
  if t.total = 0 then 0.
  else begin
    let covered = Array.fold_left (fun acc (_, c) -> acc + c) 0 (top_n t n) in
    float_of_int covered /. float_of_int t.total
  end
