type config = {
  tnv_capacity : int;
  tnv_policy : Tnv.policy;
  clear_interval : int;
  distinct_cap : int;
}

let default_config =
  { tnv_capacity = 8; tnv_policy = Tnv.Lfu_clear; clear_interval = 2000;
    distinct_cap = 1024 }

type t = {
  tnv : Tnv.t;
  deltas : Tnv.t; (* TNV over value transitions: the stride profile *)
  distinct : (int64, unit) Hashtbl.t;
  distinct_cap : int;
  mutable saturated : bool;
  mutable last : int64;
  mutable has_last : bool;
  mutable lvp_hits : int;
  mutable zero_hits : int;
}

let create ?(config = default_config) () =
  { tnv =
      Tnv.create ~policy:config.tnv_policy ~clear_interval:config.clear_interval
        ~capacity:config.tnv_capacity ();
    deltas =
      Tnv.create ~policy:config.tnv_policy ~clear_interval:config.clear_interval
        ~capacity:config.tnv_capacity ();
    distinct = Hashtbl.create 64;
    distinct_cap = config.distinct_cap;
    saturated = false;
    last = 0L;
    has_last = false;
    lvp_hits = 0;
    zero_hits = 0 }

let observe t v =
  Tnv.add t.tnv v;
  if t.has_last then begin
    if Int64.equal v t.last then t.lvp_hits <- t.lvp_hits + 1;
    Tnv.add t.deltas (Int64.sub v t.last)
  end;
  t.last <- v;
  t.has_last <- true;
  if Int64.equal v 0L then t.zero_hits <- t.zero_hits + 1;
  if not (Hashtbl.mem t.distinct v) then begin
    if Hashtbl.length t.distinct < t.distinct_cap then
      Hashtbl.replace t.distinct v ()
    else t.saturated <- true
  end

let total t = Tnv.total t.tnv

let inv_top t = Tnv.inv_top t.tnv

let top_value t = Option.map fst (Tnv.top t.tnv)

let metrics t =
  let n = total t in
  if n = 0 then Metrics.empty
  else
    let fn = float_of_int n in
    { Metrics.total = n;
      lvp = float_of_int t.lvp_hits /. fn;
      inv_top = Tnv.inv_top t.tnv;
      inv_all = Tnv.inv_all t.tnv;
      zero = float_of_int t.zero_hits /. fn;
      distinct = Hashtbl.length t.distinct;
      distinct_saturated = t.saturated;
      top_values = Tnv.entries t.tnv;
      stride_top = Tnv.inv_top t.deltas;
      top_stride = Option.map fst (Tnv.top t.deltas) }

let reset t =
  Tnv.reset t.tnv;
  Tnv.reset t.deltas;
  Hashtbl.reset t.distinct;
  t.saturated <- false;
  t.last <- 0L;
  t.has_last <- false;
  t.lvp_hits <- 0;
  t.zero_hits <- 0
