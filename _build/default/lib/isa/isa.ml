type reg = int

let num_regs = 32
let zero_reg = 31

let v0 = 0
let a0 = 16
let a1 = 17
let a2 = 18
let a3 = 19
let a4 = 20
let a5 = 21
let sp = 30

let t0 = 1
let t1 = 2
let t2 = 3
let t3 = 4
let t4 = 5
let t5 = 6
let t6 = 7
let t7 = 8

let s0 = 9
let s1 = 10
let s2 = 11
let s3 = 12
let s4 = 13
let s5 = 14

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Sll | Srl | Sra
  | Cmpeq | Cmplt | Cmple | Cmpult

type operand = Reg of reg | Imm of int64

type cond = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Op of binop * reg * operand * reg
  | Ldi of reg * int64
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Br of cond * reg * int
  | Jmp of int
  | Jsr of int
  | Jsr_ind of reg
  | Ret
  | Halt
  | Nop

type category = Alu | Load | Store | Branch | Call | Return | Other

let category = function
  | Op _ | Ldi _ -> Alu
  | Ld _ -> Load
  | St _ -> Store
  | Br _ | Jmp _ -> Branch
  | Jsr _ | Jsr_ind _ -> Call
  | Ret -> Return
  | Halt | Nop -> Other

let dest_reg = function
  | Op (_, _, _, rc) -> if rc = zero_reg then None else Some rc
  | Ldi (rd, _) | Ld (rd, _, _) -> if rd = zero_reg then None else Some rd
  | St _ | Br _ | Jmp _ | Jsr _ | Jsr_ind _ | Ret | Halt | Nop -> None

let is_control = function
  | Br _ | Jmp _ | Jsr _ | Jsr_ind _ | Ret | Halt -> true
  | Op _ | Ldi _ | Ld _ | St _ | Nop -> false

let targets = function
  | Br (_, _, t) | Jmp t | Jsr t -> [ t ]
  | Op _ | Ldi _ | Ld _ | St _ | Jsr_ind _ | Ret | Halt | Nop -> []

let string_of_reg r =
  if r = zero_reg then "zero"
  else if r = sp then "sp"
  else if r = v0 then "v0"
  else if r >= a0 && r <= a5 then Printf.sprintf "a%d" (r - a0)
  else if r >= t0 && r <= t7 then Printf.sprintf "t%d" (r - t0)
  else if r >= s0 && r <= s5 then Printf.sprintf "s%d" (r - s0)
  else Printf.sprintf "r%d" r

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple" | Cmpult -> "cmpult"

let string_of_cond = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_operand ppf = function
  | Reg r -> Fmt.string ppf (string_of_reg r)
  | Imm v -> Fmt.pf ppf "#%Ld" v

let pp_instr ppf = function
  | Op (op, ra, ob, rc) ->
    Fmt.pf ppf "%s %s, %a -> %s" (string_of_binop op) (string_of_reg ra)
      pp_operand ob (string_of_reg rc)
  | Ldi (rd, v) -> Fmt.pf ppf "ldi #%Ld -> %s" v (string_of_reg rd)
  | Ld (rd, rb, off) ->
    Fmt.pf ppf "ld [%s%+d] -> %s" (string_of_reg rb) off (string_of_reg rd)
  | St (ra, rb, off) ->
    Fmt.pf ppf "st %s -> [%s%+d]" (string_of_reg ra) (string_of_reg rb) off
  | Br (c, ra, t) ->
    Fmt.pf ppf "b%s %s, @%d" (string_of_cond c) (string_of_reg ra) t
  | Jmp t -> Fmt.pf ppf "jmp @%d" t
  | Jsr t -> Fmt.pf ppf "jsr @%d" t
  | Jsr_ind r -> Fmt.pf ppf "jsr (%s)" (string_of_reg r)
  | Ret -> Fmt.string ppf "ret"
  | Halt -> Fmt.string ppf "halt"
  | Nop -> Fmt.string ppf "nop"

let to_string i = Fmt.str "%a" pp_instr i
