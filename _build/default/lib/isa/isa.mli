(** The instruction set of the virtual machine.

    A 32-register, 64-bit load/store RISC in the style of the DEC Alpha the
    paper instrumented: three-operand ALU instructions with a register or
    immediate second operand, displacement-addressed loads and stores,
    compare-and-branch, direct and indirect calls. Branch and call targets
    are absolute indices into the flat code array (the assembler resolves
    symbolic labels; see {!Vp_asm.Asm}). *)

(** Register number, [0..31]. Register 31 is hardwired to zero, as on the
    Alpha. *)
type reg = int

val num_regs : int

(** The hardwired zero register. *)
val zero_reg : reg

(** Calling convention (Alpha-flavoured):
    - [a0..a5] = r16..r21 hold the first six arguments,
    - [v0]     = r0 holds the return value,
    - [sp]     = r30 is the stack pointer,
    - r1..r15 are caller-saved temporaries. *)
val v0 : reg

val a0 : reg
val a1 : reg
val a2 : reg
val a3 : reg
val a4 : reg
val a5 : reg
val sp : reg

(** [t0..t7] = r1..r8, conventional scratch registers. *)
val t0 : reg
val t1 : reg
val t2 : reg
val t3 : reg
val t4 : reg
val t5 : reg
val t6 : reg
val t7 : reg

(** [s0..s5] = r9..r14, conventional saved registers (the machine does not
    enforce saving; the names only aid workload readability). *)
val s0 : reg
val s1 : reg
val s2 : reg
val s3 : reg
val s4 : reg
val s5 : reg

(** ALU operations. Shifts use the low 6 bits of the second operand;
    [Div]/[Rem] trap on zero divisors. Comparisons yield 1 or 0.
    [Cmpult] is the unsigned less-than. *)
type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Sll | Srl | Sra
  | Cmpeq | Cmplt | Cmple | Cmpult

(** Second ALU operand. *)
type operand = Reg of reg | Imm of int64

(** Branch conditions, applied to a single register compared against 0. *)
type cond = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Op of binop * reg * operand * reg
      (** [Op (op, ra, ob, rc)]: [rc <- ra op ob]. *)
  | Ldi of reg * int64  (** Load immediate. *)
  | Ld of reg * reg * int
      (** [Ld (rd, rb, off)]: [rd <- mem\[rb + off\]] (word addressed). *)
  | St of reg * reg * int
      (** [St (ra, rb, off)]: [mem\[rb + off\] <- ra]. *)
  | Br of cond * reg * int
      (** [Br (c, ra, target)]: branch to [target] when [ra c 0]. *)
  | Jmp of int  (** Unconditional branch. *)
  | Jsr of int  (** Direct call; return address kept on the machine's call stack. *)
  | Jsr_ind of reg  (** Indirect call through a register holding a code index. *)
  | Ret
  | Halt
  | Nop

(** Coarse classification used to slice profile results the way the paper's
    tables do. *)
type category = Alu | Load | Store | Branch | Call | Return | Other

val category : instr -> category

(** The register an instruction writes, if any. Loads and ALU ops (and
    [Ldi]) produce values — these are the instructions the value profiler
    attaches TNV tables to. Writes to the zero register are reported as
    [None]. *)
val dest_reg : instr -> reg option

(** True when the instruction can redirect control flow. *)
val is_control : instr -> bool

(** Direct control-flow targets (branch/jump/call destinations); empty for
    indirect and non-control instructions. *)
val targets : instr -> int list

val string_of_reg : reg -> string
val string_of_binop : binop -> string
val string_of_cond : cond -> string

val pp_instr : Format.formatter -> instr -> unit
val to_string : instr -> string
