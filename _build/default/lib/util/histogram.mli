(** Fixed-bucket weighted histograms.

    The thesis presents invariance distributions as 10%-wide buckets whose
    contents are weighted by execution frequency (§III.D: "the average
    result, weighted by execution frequency, of each bucket is graphed; the
    y-axis entry is non-accumulative"). This module implements exactly that
    bucketing. *)

type t

(** [create ~buckets ~lo ~hi] divides [\[lo, hi\]] into [buckets] equal-width
    buckets. Raises if [buckets <= 0] or [hi <= lo]. *)
val create : buckets:int -> lo:float -> hi:float -> t

(** [add t x ~weight] accumulates [weight] into the bucket containing [x].
    Out-of-range samples clamp into the first/last bucket. *)
val add : t -> float -> weight:float -> unit

val bucket_count : t -> int

(** [bounds t i] is the [(lo, hi)] range of bucket [i]. *)
val bounds : t -> int -> float * float

(** Total weight collected in bucket [i]. *)
val weight : t -> int -> float

(** Sum of all bucket weights. *)
val total_weight : t -> float

(** [fraction t i] is [weight t i / total_weight t] (0 when empty). *)
val fraction : t -> int -> float

(** All fractions, index 0 first. *)
val fractions : t -> float array
