lib/util/table.mli:
