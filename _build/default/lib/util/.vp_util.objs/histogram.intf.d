lib/util/histogram.mli:
