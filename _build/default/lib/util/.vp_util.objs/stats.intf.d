lib/util/stats.mli:
