lib/util/rng.mli:
