(** Deterministic pseudo-random number generation (SplitMix64).

    Everything in this repository that needs randomness — workload input
    generation, property tests' auxiliary data, synthetic traces — goes
    through this module so that runs are reproducible bit-for-bit. *)

type t

(** [create seed] returns an independent generator. Equal seeds give equal
    streams. *)
val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int64_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int64_range : t -> int64 -> int64 -> int64

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [choose t arr] picks a uniform element. Raises on empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives a new independent generator from [t]'s stream. *)
val split : t -> t

(** Geometric-ish "zipf-like" pick in [\[0, n)]: small indices much more
    likely than large ones, with skew [s] (s >= 1.0; larger is more skewed).
    Used to synthesize the skewed value distributions real programs show. *)
val skewed : t -> n:int -> s:float -> int
