(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Chosen because it is tiny, fast, splittable
   and has well-understood statistical quality. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo; bias is negligible for bounds << 2^62. The
     mask keeps the value within OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.logand (next t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let int64_range t lo hi =
  if Int64.compare lo hi > 0 then invalid_arg "Rng.int64_range: lo > hi";
  let span = Int64.add (Int64.sub hi lo) 1L in
  if Int64.equal span 0L then next t (* full 2^64 range *)
  else
    let v = Int64.rem (Int64.shift_right_logical (next t) 1) span in
    Int64.add lo v

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = mix (next t) }

let skewed t ~n ~s =
  if n <= 0 then invalid_arg "Rng.skewed: n must be positive";
  (* Inverse-transform of a power-law density over [0,1): u^s concentrates
     mass near 0 for s > 1. Cheap and monotone; exact Zipf is unnecessary. *)
  let u = float t in
  let idx = int_of_float (float_of_int n *. (u ** s)) in
  if idx >= n then n - 1 else idx
