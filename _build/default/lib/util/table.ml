type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns ~title headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None ->
      (match headers with
       | [] -> []
       | _ :: rest -> Left :: List.map (fun _ -> Right) rest)
  in
  { title; headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let rows_in_order t = List.rev t.rows

let column_widths t =
  let n = List.length t.headers in
  let widths = Array.make n 0 in
  let feed cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  feed t.headers;
  List.iter (function Cells c -> feed c | Separator -> ()) (rows_in_order t);
  widths

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 1024 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let row cells =
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad align widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  if t.title <> "" then Buffer.add_string buf (t.title ^ "\n");
  line '-';
  row t.headers;
  line '=';
  List.iter
    (function Cells c -> row c | Separator -> line '-')
    (rows_in_order t);
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  row t.headers;
  List.iter (function Cells c -> row c | Separator -> ()) (rows_in_order t);
  Buffer.contents buf

let pct x = Printf.sprintf "%.1f%%" (100. *. x)

let fixed ~digits x = Printf.sprintf "%.*f" digits x

let count n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
