(** Column-aligned ASCII tables, the output format for every experiment.

    Cells are strings; helpers format the common cases (percentages, counts)
    consistently so the reproduced tables read like the thesis's. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table; every subsequent row must have
    [List.length headers] cells. Columns align [Right] except the first. *)
val create : ?aligns:align list -> title:string -> string list -> t

val add_row : t -> string list -> unit

(** Add a horizontal separator before the next row. *)
val add_sep : t -> unit

(** Render with box-drawing rules to a string (trailing newline included). *)
val render : t -> string

(** Print [render] to stdout. *)
val print : t -> unit

(** Comma-separated rendering (header row first, no title). *)
val to_csv : t -> string

(** Format helpers. *)

(** [pct x] formats a ratio in [\[0,1\]] as e.g. ["87.3%"]. *)
val pct : float -> string

(** [fixed ~digits x] plain fixed-point formatting. *)
val fixed : digits:int -> float -> string

(** [count n] renders with thousands separators, e.g. ["1,234,567"]. *)
val count : int -> string
