type t = {
  lo : float;
  hi : float;
  width : float;
  weights : float array;
}

let create ~buckets ~lo ~hi =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; width = (hi -. lo) /. float_of_int buckets;
    weights = Array.make buckets 0. }

let bucket_count t = Array.length t.weights

let index_of t x =
  let n = bucket_count t in
  if x <= t.lo then 0
  else if x >= t.hi then n - 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    if i >= n then n - 1 else i
  end

let add t x ~weight = t.weights.(index_of t x) <- t.weights.(index_of t x) +. weight

let bounds t i =
  if i < 0 || i >= bucket_count t then invalid_arg "Histogram.bounds";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let weight t i =
  if i < 0 || i >= bucket_count t then invalid_arg "Histogram.weight";
  t.weights.(i)

let total_weight t = Array.fold_left ( +. ) 0. t.weights

let fraction t i =
  let total = total_weight t in
  if total = 0. then 0. else weight t i /. total

let fractions t = Array.init (bucket_count t) (fraction t)
