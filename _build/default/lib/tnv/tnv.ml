type policy = Lfu_clear | Lfu | Lru

type t = {
  pol : policy;
  cap : int;
  interval : int;
  values : int64 array;
  counts : int array; (* count 0 = empty slot *)
  stamps : int array; (* last-touch tick, for LRU *)
  mutable tick : int;
  mutable total : int;
  mutable since_clear : int;
}

let create ?(policy = Lfu_clear) ?(clear_interval = 2000) ~capacity () =
  if capacity <= 0 then invalid_arg "Tnv.create: capacity must be positive";
  if clear_interval <= 0 then invalid_arg "Tnv.create: clear_interval must be positive";
  { pol = policy; cap = capacity; interval = clear_interval;
    values = Array.make capacity 0L;
    counts = Array.make capacity 0;
    stamps = Array.make capacity 0;
    tick = 0; total = 0; since_clear = 0 }

let policy t = t.pol
let capacity t = t.cap
let clear_interval t = t.interval

(* Number of top entries immune to the periodic clearing. *)
let steady t = t.cap / 2

(* Clear every slot that is not among the [steady] highest-counted ones. *)
let periodic_clear t =
  let order = Array.init t.cap (fun i -> i) in
  Array.sort (fun a b -> compare t.counts.(b) t.counts.(a)) order;
  for rank = steady t to t.cap - 1 do
    let i = order.(rank) in
    t.counts.(i) <- 0;
    t.values.(i) <- 0L;
    t.stamps.(i) <- 0
  done

let find_value t v =
  let rec loop i =
    if i >= t.cap then -1
    else if t.counts.(i) > 0 && Int64.equal t.values.(i) v then i
    else loop (i + 1)
  in
  loop 0

let find_empty t =
  let rec loop i =
    if i >= t.cap then -1 else if t.counts.(i) = 0 then i else loop (i + 1)
  in
  loop 0

let index_of_min t key =
  let best = ref 0 in
  for i = 1 to t.cap - 1 do
    if key i < key !best then best := i
  done;
  !best

let add t v =
  t.total <- t.total + 1;
  t.tick <- t.tick + 1;
  let hit = find_value t v in
  if hit >= 0 then begin
    t.counts.(hit) <- t.counts.(hit) + 1;
    t.stamps.(hit) <- t.tick
  end
  else begin
    let empty = find_empty t in
    if empty >= 0 then begin
      t.values.(empty) <- v;
      t.counts.(empty) <- 1;
      t.stamps.(empty) <- t.tick
    end
    else
      match t.pol with
      | Lfu_clear -> () (* dropped; the periodic clear will make room *)
      | Lfu ->
        let i = index_of_min t (fun i -> t.counts.(i)) in
        t.values.(i) <- v;
        t.counts.(i) <- 1;
        t.stamps.(i) <- t.tick
      | Lru ->
        let i = index_of_min t (fun i -> t.stamps.(i)) in
        t.values.(i) <- v;
        t.counts.(i) <- 1;
        t.stamps.(i) <- t.tick
  end;
  if t.pol = Lfu_clear then begin
    t.since_clear <- t.since_clear + 1;
    if t.since_clear >= t.interval then begin
      t.since_clear <- 0;
      periodic_clear t
    end
  end

let total t = t.total

let covered t = Array.fold_left ( + ) 0 t.counts

let entries t =
  let occupied = ref [] in
  for i = t.cap - 1 downto 0 do
    if t.counts.(i) > 0 then occupied := (t.values.(i), t.counts.(i)) :: !occupied
  done;
  let arr = Array.of_list !occupied in
  Array.sort (fun (_, a) (_, b) -> compare b a) arr;
  arr

let top t =
  let e = entries t in
  if Array.length e = 0 then None else Some e.(0)

let inv_top t =
  if t.total = 0 then 0.
  else
    match top t with
    | None -> 0.
    | Some (_, c) -> float_of_int c /. float_of_int t.total

let inv_all t =
  if t.total = 0 then 0. else float_of_int (covered t) /. float_of_int t.total

let reset t =
  Array.fill t.values 0 t.cap 0L;
  Array.fill t.counts 0 t.cap 0;
  Array.fill t.stamps 0 t.cap 0;
  t.tick <- 0;
  t.total <- 0;
  t.since_clear <- 0
