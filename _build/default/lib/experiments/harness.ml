let workloads = Workloads.all

let profile_cache : (string * Workload.input, Profile.t) Hashtbl.t =
  Hashtbl.create 32

let run_cache : (string * Workload.input, Machine.t) Hashtbl.t =
  Hashtbl.create 32

let procprof_cache : (string * Workload.input, Procprof.t) Hashtbl.t =
  Hashtbl.create 32

let memo cache key compute =
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.replace cache key v;
    v

let full_profile (w : Workload.t) input =
  memo profile_cache (w.wname, input) (fun () ->
      Profile.run ~selection:`All (w.wbuild input))

let plain_run (w : Workload.t) input =
  memo run_cache (w.wname, input) (fun () -> Machine.execute (w.wbuild input))

let proc_profile (w : Workload.t) input =
  memo procprof_cache (w.wname, input) (fun () ->
      let config = { Procprof.default_config with arities = w.warities } in
      Procprof.run ~config (w.wbuild input))

let clear_cache () =
  Hashtbl.reset profile_cache;
  Hashtbl.reset run_cache;
  Hashtbl.reset procprof_cache

let load_points p = Profile.points_by_category p Isa.Load

let value_points p = Array.to_list p.Profile.points
