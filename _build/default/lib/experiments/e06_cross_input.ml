(* E06 — Table V.5: load-value metrics on the test vs. train data sets,
   and the cross-input correlation of per-instruction invariance — the
   Wall [38] question: does a profile gathered on one input predict
   behaviour on another? *)

let paired_points (test_profile : Profile.t) (train_profile : Profile.t) =
  let pairs = ref [] in
  Array.iter
    (fun (tp : Profile.point) ->
      if Isa.category tp.p_instr = Isa.Load && tp.p_metrics.Metrics.total > 0
      then
        match Profile.point_at train_profile tp.p_pc with
        | Some rp when rp.p_metrics.Metrics.total > 0 -> pairs := (tp, rp) :: !pairs
        | Some _ | None -> ())
    test_profile.Profile.points;
  !pairs

let run () =
  let table =
    Table.create
      ~title:
        "E06 / Table V.5 - Load values on the test and train data sets"
      [ "program"; "LVP t"; "LVP tr"; "InvTop t"; "InvTop tr"; "InvAll t";
        "InvAll tr"; "Diff t"; "Diff tr"; "corr(InvTop)" ]
  in
  let correlations = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let pt = Harness.full_profile w Workload.Test in
      let ptr = Harness.full_profile w Workload.Train in
      let loads_t = Harness.load_points pt in
      let loads_tr = Harness.load_points ptr in
      let wt f = Profile.weighted loads_t f
      and wtr f = Profile.weighted loads_tr f in
      let mean_diff points =
        Stats.mean
          (Array.of_list
             (List.filter_map
                (fun (p : Profile.point) ->
                  if p.p_metrics.Metrics.total = 0 then None
                  else Some (float_of_int p.p_metrics.Metrics.distinct))
                points))
      in
      let pairs = paired_points pt ptr in
      let corr =
        if List.length pairs < 2 then nan
        else
          Stats.pearson
            (Array.of_list
               (List.map (fun ((a : Profile.point), _) -> a.p_metrics.Metrics.inv_top) pairs))
            (Array.of_list
               (List.map (fun (_, (b : Profile.point)) -> b.p_metrics.Metrics.inv_top) pairs))
      in
      if not (Float.is_nan corr) then correlations := corr :: !correlations;
      Table.add_row table
        [ w.wname;
          Table.pct (wt (fun m -> m.Metrics.lvp));
          Table.pct (wtr (fun m -> m.Metrics.lvp));
          Table.pct (wt (fun m -> m.Metrics.inv_top));
          Table.pct (wtr (fun m -> m.Metrics.inv_top));
          Table.pct (wt (fun m -> m.Metrics.inv_all));
          Table.pct (wtr (fun m -> m.Metrics.inv_all));
          Table.fixed ~digits:1 (mean_diff loads_t);
          Table.fixed ~digits:1 (mean_diff loads_tr);
          (if Float.is_nan corr then "n/a" else Table.fixed ~digits:2 corr) ])
    Harness.workloads;
  Table.add_sep table;
  Table.add_row table
    [ "mean corr"; ""; ""; ""; ""; ""; ""; ""; "";
      Table.fixed ~digits:2 (Stats.mean (Array.of_list !correlations)) ];
  [ table ]
