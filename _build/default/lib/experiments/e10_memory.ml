(* E10 — memory-location value profiling (Chapter VII): how invariant are
   the values stored at individual memory locations? *)

let run () =
  let table =
    Table.create
      ~title:
        "E10 - Memory-location value profiling (loads+stores, test input)"
      [ "program"; "locations"; "events"; "InvTop (wt)"; "LVP (wt)";
        ">=90% inv (wt)"; ">=90% inv (loc)"; "%zero" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let r = Memprof.run (w.wbuild Workload.Test) in
      Table.add_row table
        [ w.wname;
          Table.count (Array.length r.Memprof.locations);
          Table.count r.Memprof.tracked_events;
          Table.pct (Memprof.mean_metric r (fun m -> m.Metrics.inv_top));
          Table.pct (Memprof.mean_metric r (fun m -> m.Metrics.lvp));
          Table.pct (Memprof.fraction_invariant r ~threshold:0.9);
          Table.pct (Memprof.fraction_invariant ~weighted:false r ~threshold:0.9);
          Table.pct (Memprof.mean_metric r (fun m -> m.Metrics.zero)) ])
    Harness.workloads;
  [ table ]
