(* E09 — convergent sampling (Chapter VI): profiling overhead (fraction
   of dynamic events actually recorded) against invariance error relative
   to the full profile, for several sampler aggressiveness settings. *)

let configs =
  [ ("eager (no backoff)",
     { Sampler.default_config with initial_skip = 50; backoff = 1. });
    ("default", Sampler.default_config);
    ("aggressive",
     { Sampler.default_config with
       initial_skip = 500; backoff = 8.; max_skip = 500_000 }) ]

let run () =
  let table =
    Table.create
      ~title:
        "E09 - Convergent sampling: overhead vs invariance error (all value instructions, test input)"
      [ "program"; "config"; "events"; "profiled"; "overhead"; "inv error";
        "converged pts" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let full = Harness.full_profile w Workload.Test in
      List.iter
        (fun (cname, config) ->
          let sampled = Sampler.run ~config (w.wbuild Workload.Test) in
          let converged =
            Array.fold_left
              (fun acc (p : Sampler.point) -> if p.s_converged then acc + 1 else acc)
              0 sampled.Sampler.points
          in
          Table.add_row table
            [ w.wname; cname;
              Table.count sampled.Sampler.total_events;
              Table.count sampled.Sampler.profiled_events;
              Table.pct sampled.Sampler.overhead;
              Table.pct (Sampler.invariance_error sampled full);
              Printf.sprintf "%d/%d" converged
                (Array.length sampled.Sampler.points) ])
        configs;
      Table.add_sep table)
    Harness.workloads;
  [ table ]
