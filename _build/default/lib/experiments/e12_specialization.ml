(* E12 — code specialization (Chapter X): pick each workload's best
   semi-invariant procedure parameter from the procedure profile,
   specialize on its dominant value, check the rewritten program computes
   the same result, and report the dynamic-instruction change. *)

type outcome = {
  o_workload : string;
  o_proc : string;
  o_param : Isa.reg;
  o_value : int64;
  o_inv : float;
  o_report : Specialize.report option; (* None when unsupported *)
  o_equal : bool;
  o_icount_before : int;
  o_icount_after : int;
}

(* Try candidates in order until one specializes cleanly. *)
let attempt (w : Workload.t) =
  let pp = Harness.proc_profile w Workload.Test in
  let candidates = Specialize.candidates pp ~min_calls:100 ~min_inv:0.5 in
  let prog = w.wbuild Workload.Test in
  let rec go = function
    | [] -> None
    | (proc, param, value, inv) :: rest ->
      (match Specialize.specialize prog ~proc ~param ~value with
       | report ->
         let equal, before, after =
           Specialize.differential prog report.Specialize.sp_program
         in
         Some
           { o_workload = w.wname; o_proc = proc; o_param = param;
             o_value = value; o_inv = inv; o_report = Some report;
             o_equal = equal; o_icount_before = before;
             o_icount_after = after }
       | exception Body.Unsupported _ -> go rest)
  in
  go candidates

let outcomes () = List.filter_map attempt Harness.workloads

let run () =
  let table =
    Table.create
      ~title:
        "E12 / Ch. X - Code specialization on semi-invariant parameters (test input)"
      [ "program"; "procedure"; "param"; "value"; "Inv-Top"; "body before";
        "body after"; "folded"; "branches"; "dead"; "dyn before";
        "dyn after"; "change"; "same result" ]
  in
  List.iter
    (fun o ->
      match o.o_report with
      | None -> ()
      | Some r ->
        let change =
          float_of_int (o.o_icount_after - o.o_icount_before)
          /. float_of_int o.o_icount_before
        in
        Table.add_row table
          [ o.o_workload; o.o_proc;
            Isa.string_of_reg o.o_param;
            Int64.to_string o.o_value;
            Table.pct o.o_inv;
            string_of_int r.Specialize.sp_static_before;
            string_of_int r.Specialize.sp_static_after;
            string_of_int r.Specialize.sp_folded;
            string_of_int r.Specialize.sp_branches_resolved;
            string_of_int r.Specialize.sp_dead_removed;
            Table.count o.o_icount_before;
            Table.count o.o_icount_after;
            Printf.sprintf "%+.1f%%" (100. *. change);
            (if o.o_equal then "yes" else "NO") ])
    (outcomes ());
  [ table ]
