(* E23 — the memoization transform (Richardson [32]) applied to the
   procedures the procedure profile (E13/E20) flags. Only procedures that
   are pure modulo read-only memory are legal targets — the list below is
   that audit for the bundled workloads (e.g. go's `eval` reads the
   mutating board and m88ksim's `decode` writes a scratch area, so
   neither appears). li's `arith` is pure but its argument tuples never
   repeat: the honest negative the profile predicts (0% memo hits). *)

let candidates =
  [ ("perl", "hash_word", 2); ("li", "arith", 3); ("vortex", "find", 2) ]

let run () =
  let table =
    Table.create
      ~title:
        "E23 - Memoization transform on profile-flagged pure procedures (test input)"
      [ "program"; "procedure"; "profile hit rate"; "dyn before"; "dyn after";
        "change"; "same result" ]
  in
  List.iter
    (fun (wname, proc, arity) ->
      let w = Workloads.find wname in
      let prog = w.wbuild Workload.Test in
      let pp = Harness.proc_profile w Workload.Test in
      let profile_rate =
        match
          Array.find_opt
            (fun (r : Procprof.proc_report) -> r.r_name = proc)
            pp.Procprof.procs
        with
        | Some r when r.r_calls > 0 ->
          float_of_int r.r_memo_hits /. float_of_int r.r_calls
        | Some _ | None -> 0.
      in
      match Memoize.memoize prog ~proc ~arity with
      | report ->
        let equal, before, after = Memoize.differential prog report in
        Table.add_row table
          [ wname; proc;
            Table.pct profile_rate;
            Table.count before;
            Table.count after;
            Printf.sprintf "%+.1f%%"
              (100. *. float_of_int (after - before) /. float_of_int before);
            (if equal then "yes" else "NO") ]
      | exception Body.Unsupported msg ->
        Table.add_row table [ wname; proc; Table.pct profile_rate; "-"; "-"; msg; "-" ])
    candidates;
  [ table ]
