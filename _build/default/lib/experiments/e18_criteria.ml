(* E18 — sampler convergence-criterion ablation ("many improvements can
   also be made for the intelligent sampler"): the thesis's
   change-in-invariance criterion against top-value-stability, at the same
   burst/skip settings. *)

let criteria =
  [ ("inv-delta (thesis)", Sampler.Inv_delta);
    ("top-stability", Sampler.Top_stability) ]

let run () =
  let table =
    Table.create
      ~title:
        "E18 - Convergence criterion ablation (default burst/skip, test input)"
      [ "program"; "criterion"; "overhead"; "inv error"; "converged pts" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let full = Harness.full_profile w Workload.Test in
      List.iter
        (fun (name, criterion) ->
          let config = { Sampler.default_config with criterion } in
          let sampled = Sampler.run ~config (w.wbuild Workload.Test) in
          let converged =
            Array.fold_left
              (fun acc (p : Sampler.point) ->
                if p.s_converged then acc + 1 else acc)
              0 sampled.Sampler.points
          in
          Table.add_row table
            [ w.wname; name;
              Table.pct sampled.Sampler.overhead;
              Table.pct (Sampler.invariance_error sampled full);
              Printf.sprintf "%d/%d" converged
                (Array.length sampled.Sampler.points) ])
        criteria;
      Table.add_sep table)
    Harness.workloads;
  [ table ]
