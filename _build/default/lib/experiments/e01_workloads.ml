(* E01 — Table III.1: the benchmark programs, their two data sets, and
   dynamic instruction counts. *)

let run () =
  let table =
    Table.create
      ~title:
        "E01 / Table III.1 - Benchmarks and data sets (dynamic instructions)"
      [ "program"; "mimics"; "static instrs"; "procs"; "test (dyn)";
        "train (dyn)"; "loads"; "stores" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let m_test = Harness.plain_run w Workload.Test in
      let m_train = Harness.plain_run w Workload.Train in
      let census = Atom.category_census prog in
      let count cat =
        match List.assoc_opt cat census with Some n -> n | None -> 0
      in
      Table.add_row table
        [ w.wname; w.wmimics;
          Table.count (Array.length prog.Asm.code);
          string_of_int (Array.length prog.Asm.procs);
          Table.count (Machine.icount m_test);
          Table.count (Machine.icount m_train);
          Table.count (count Isa.Load);
          Table.count (count Isa.Store) ])
    Harness.workloads;
  [ table ]
