(* E16 — register-granularity value profiling (the Gabbay [17]
   register-file prediction discussion of §II): invariance of the values
   written to each architectural register, aggregated over all
   instructions targeting it. *)

let reg_class r =
  if r = Isa.v0 then "v0"
  else if r >= Isa.a0 && r <= Isa.a5 then "args"
  else if r >= Isa.t0 && r <= Isa.t7 then "temps"
  else if r >= Isa.s0 && r <= Isa.s5 then "saved"
  else "other"

let run () =
  let table =
    Table.create
      ~title:
        "E16 - Register value profiling (all writes per architectural register, test input)"
      [ "program"; "class"; "writes"; "LVP"; "Inv-Top"; "Inv-All"; "%zero" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let r = Regprof.run (w.wbuild Workload.Test) in
      (* aggregate per register class, weighted by writes *)
      let classes = [ "v0"; "args"; "temps"; "saved" ] in
      List.iter
        (fun cls ->
          let members =
            Array.to_list r.Regprof.regs
            |> List.filter (fun (g : Regprof.reg_report) ->
                   reg_class g.g_reg = cls)
          in
          if members <> [] then begin
            let metrics = List.map (fun (g : Regprof.reg_report) -> g.g_metrics) members in
            let writes =
              List.fold_left
                (fun acc (g : Regprof.reg_report) -> acc + g.g_writes)
                0 members
            in
            let wm field = Metrics.weighted_mean field metrics in
            Table.add_row table
              [ w.wname; cls;
                Table.count writes;
                Table.pct (wm (fun m -> m.Metrics.lvp));
                Table.pct (wm (fun m -> m.Metrics.inv_top));
                Table.pct (wm (fun m -> m.Metrics.inv_all));
                Table.pct (wm (fun m -> m.Metrics.zero)) ]
          end)
        classes;
      Table.add_sep table)
    Harness.workloads;
  [ table ]
