(* E13 — procedure-level profiling: parameter and return-value invariance
   of the hottest procedures, plus the Richardson [32] memoization
   opportunity (how often a procedure sees an argument tuple again). *)

let run () =
  let table =
    Table.create
      ~title:
        "E13 - Procedure parameter/return invariance and memoization (test input)"
      [ "program"; "procedure"; "calls"; "param Inv-Top (per arg)";
        "ret Inv-Top"; "memo hits" ]
  in
  let rates = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let pp = Harness.proc_profile w Workload.Test in
      Array.iter
        (fun (r : Procprof.proc_report) ->
          if r.r_calls > 0 then begin
            let params =
              if Array.length r.r_params = 0 then "-"
              else
                String.concat " / "
                  (Array.to_list
                     (Array.map
                        (fun (m : Metrics.t) -> Table.pct m.inv_top)
                        r.r_params))
            in
            let memo =
              if Array.length r.r_params = 0 then "-"
              else Table.pct (float_of_int r.r_memo_hits /. float_of_int r.r_calls)
            in
            Table.add_row table
              [ w.wname; r.r_name;
                Table.count r.r_calls;
                params;
                Table.pct r.r_return.Metrics.inv_top;
                memo ]
          end)
        pp.Procprof.procs;
      rates := Procprof.memo_hit_rate pp :: !rates;
      Table.add_sep table)
    Harness.workloads;
  let summary =
    Table.create ~title:"E13b - Memoization-cache hit rate per program"
      [ "program"; "hit rate" ]
  in
  List.iter2
    (fun (w : Workload.t) rate ->
      Table.add_row summary [ w.wname; Table.pct rate ])
    Harness.workloads (List.rev !rates);
  [ table; summary ]
