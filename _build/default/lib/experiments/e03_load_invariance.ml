(* E03 — load-value invariance (the thesis's headline load tables): per
   program, the execution-weighted LVP, Inv-Top, Inv-All, %zero and mean
   Diff over load instructions. *)

let metric_row name points =
  let w field = Profile.weighted points field in
  let diffs =
    List.filter_map
      (fun (p : Profile.point) ->
        if p.p_metrics.Metrics.total = 0 then None
        else Some (float_of_int p.p_metrics.Metrics.distinct))
      points
  in
  [ name;
    Table.pct (w (fun m -> m.Metrics.lvp));
    Table.pct (w (fun m -> m.Metrics.inv_top));
    Table.pct (w (fun m -> m.Metrics.inv_all));
    Table.pct (w (fun m -> m.Metrics.zero));
    Table.fixed ~digits:1 (Stats.mean (Array.of_list diffs)) ]

let run () =
  let table =
    Table.create
      ~title:
        "E03 - Load value invariance (test input, weighted by execution frequency)"
      [ "program"; "LVP"; "Inv-Top"; "Inv-All"; "%zero"; "mean Diff" ]
  in
  let all_points = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let profile = Harness.full_profile w Workload.Test in
      let loads = Harness.load_points profile in
      all_points := loads @ !all_points;
      Table.add_row table (metric_row w.wname loads))
    Harness.workloads;
  Table.add_sep table;
  Table.add_row table (metric_row "mean (all)" !all_points);
  [ table ]
