(* E14 — profiling overhead, measured in analysis events (the quantity
   that dominated ATOM's slowdown): dynamic instructions, events under
   full profiling, events under the convergent sampler, and the
   reduction. Wall-clock overhead of the OCaml profiler itself is in
   bench/main.ml (Bechamel). *)

let run () =
  let table =
    Table.create
      ~title:
        "E14 - Profiling overhead: full vs convergent sampling (test input)"
      [ "program"; "dyn instrs"; "full events"; "sampled events";
        "reduction"; "sample overhead" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let full = Harness.full_profile w Workload.Test in
      let sampled = Sampler.run (w.wbuild Workload.Test) in
      let reduction =
        if sampled.Sampler.profiled_events = 0 then infinity
        else
          float_of_int full.Profile.profiled_events
          /. float_of_int sampled.Sampler.profiled_events
      in
      Table.add_row table
        [ w.wname;
          Table.count full.Profile.dynamic_instructions;
          Table.count full.Profile.profiled_events;
          Table.count sampled.Sampler.profiled_events;
          Printf.sprintf "%.1fx" reduction;
          Table.pct sampled.Sampler.overhead ])
    Harness.workloads;
  [ table ]
