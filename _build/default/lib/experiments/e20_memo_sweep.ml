(* E20 — memoization-cache size sweep (extending E13's Richardson [32]
   measurement): how large a cache of remembered argument tuples is
   needed before hit rates saturate? *)

let capacities = [ 16; 64; 256; 1024; 4096 ]

let run () =
  let headers =
    "program" :: List.map (fun c -> Printf.sprintf "cap %d" c) capacities
  in
  let table =
    Table.create
      ~title:
        "E20 - Memoization-cache hit rate vs capacity (argument tuples per procedure, test input)"
      headers
  in
  List.iter
    (fun (w : Workload.t) ->
      let rates =
        List.map
          (fun memo_capacity ->
            let config =
              { Procprof.default_config with arities = w.warities;
                memo_capacity }
            in
            let pp = Procprof.run ~config (w.wbuild Workload.Test) in
            Procprof.memo_hit_rate pp)
          capacities
      in
      Table.add_row table (w.wname :: List.map Table.pct rates))
    Harness.workloads;
  [ table ]
