(* E05 — the invariance-distribution figure: Inv-Top of every
   value-producing instruction bucketed into 10%-wide bins, weighted by
   execution frequency ("the y-axis entry is non-accumulative", §III.D).
   One row per program; the columns are the figure's bars. *)

let buckets = 10

let run () =
  let headers =
    "program"
    :: List.init buckets (fun i ->
           Printf.sprintf "%d-%d" (i * 100 / buckets) ((i + 1) * 100 / buckets))
  in
  let table =
    Table.create
      ~title:
        "E05 - Distribution of Inv-Top across dynamic execution (test input; % of executions per invariance bucket)"
      headers
  in
  List.iter
    (fun (w : Workload.t) ->
      let profile = Harness.full_profile w Workload.Test in
      let hist = Histogram.create ~buckets ~lo:0. ~hi:1. in
      Array.iter
        (fun (p : Profile.point) ->
          let m = p.p_metrics in
          if m.Metrics.total > 0 then
            Histogram.add hist m.Metrics.inv_top
              ~weight:(float_of_int m.Metrics.total))
        profile.Profile.points;
      Table.add_row table
        (w.wname
         :: List.init buckets (fun i -> Table.pct (Histogram.fraction hist i))))
    Harness.workloads;
  [ table ]
