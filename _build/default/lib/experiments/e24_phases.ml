(* E24 — temporal stability of value behaviour: the convergent sampler
   assumes an instruction's invariance is stationary; this measures the
   per-window drift that breaks the assumption and correlates it with
   E09's sampler error. *)

let run () =
  let table =
    Table.create
      ~title:
        "E24 - Phase behaviour: per-window Inv-Top drift (2000-execution windows, loads, test input)"
      [ "program"; "points"; "mean drift"; "max drift"; "stable pts (<5pp)";
        "sampler err (E09 default)" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let ph = Phaseprof.run ~selection:`Loads prog in
      let executed =
        Array.to_list ph.Phaseprof.points
        |> List.filter (fun (p : Phaseprof.point) -> p.ph_total > 0)
      in
      let drifts =
        Array.of_list (List.map (fun (p : Phaseprof.point) -> p.ph_drift) executed)
      in
      let stable =
        List.length
          (List.filter (fun (p : Phaseprof.point) -> p.ph_drift < 0.05) executed)
      in
      let full = Harness.full_profile w Workload.Test in
      let sampled = Sampler.run (w.wbuild Workload.Test) in
      Table.add_row table
        [ w.wname;
          string_of_int (List.length executed);
          Table.pct (Phaseprof.mean_drift ph);
          Table.pct (if Array.length drifts = 0 then 0. else snd (Stats.min_max drifts));
          Printf.sprintf "%d/%d" stable (List.length executed);
          Table.pct (Sampler.invariance_error sampled full) ])
    Harness.workloads;
  [ table ]
