(* E02 — Table IV.1: the Basic Block Quantile Table. For each program,
   the fraction of all dynamic basic-block executions covered by the
   hottest k% of static basic blocks — the classic evidence that most of
   execution lives in very little code. *)

let quantiles = [ 1.; 5.; 10.; 20.; 50. ]

(* Coverage of the top q% of blocks (by dynamic count, descending). *)
let coverage counts q =
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let n = Array.length sorted in
  let take = max 1 (int_of_float (ceil (float_of_int n *. q /. 100.))) in
  let total = Array.fold_left ( + ) 0 sorted in
  if total = 0 then 0.
  else begin
    let acc = ref 0 in
    for i = 0 to take - 1 do
      acc := !acc + sorted.(i)
    done;
    float_of_int !acc /. float_of_int total
  end

let run () =
  let headers =
    "program" :: "blocks"
    :: List.map (fun q -> Printf.sprintf "top %.0f%%" q) quantiles
  in
  let table =
    Table.create
      ~title:
        "E02 / Table IV.1 - Basic Block Quantile Table (dynamic coverage of hottest static blocks, test input)"
      headers
  in
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let m = Harness.plain_run w Workload.Test in
      let blocks = Cfg.build prog in
      let counts = Cfg.dynamic_counts m blocks in
      Table.add_row table
        (w.wname
         :: string_of_int (Array.length blocks)
         :: List.map (fun q -> Table.pct (coverage counts q)) quantiles))
    Harness.workloads;
  [ table ]
