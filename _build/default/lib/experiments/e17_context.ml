(* E17 — context-sensitive parameter profiling (the thesis's future-work
   pointer to Young & Smith [40]): splitting a procedure's parameter
   profile by call site can only raise observed invariance; this measures
   by how much, per procedure and per workload. *)

let run () =
  let table =
    Table.create
      ~title:
        "E17 - Parameter invariance: aggregate vs per-call-site (test input)"
      [ "program"; "procedure"; "sites"; "flat Inv-Top"; "per-site Inv-Top";
        "gain" ]
  in
  let flat_means = ref [] and ctx_means = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let flat = Harness.proc_profile w Workload.Test in
      let config = { Ctxprof.default_config with arities = w.warities } in
      let ctx = Ctxprof.run ~config prog in
      let sites_of proc =
        Array.to_list ctx.Ctxprof.contexts
        |> List.filter (fun (c : Ctxprof.context_report) -> c.c_proc = proc)
        |> List.length
      in
      List.iter
        (fun (name, flat_inv, ctx_inv) ->
          flat_means := flat_inv :: !flat_means;
          ctx_means := ctx_inv :: !ctx_means;
          Table.add_row table
            [ w.wname; name;
              string_of_int (sites_of name);
              Table.pct flat_inv;
              Table.pct ctx_inv;
              Printf.sprintf "%+.1fpp" (100. *. (ctx_inv -. flat_inv)) ])
        (Ctxprof.context_gain ctx flat);
      Table.add_sep table)
    Harness.workloads;
  Table.add_row table
    [ "mean"; ""; "";
      Table.pct (Stats.mean (Array.of_list !flat_means));
      Table.pct (Stats.mean (Array.of_list !ctx_means));
      Printf.sprintf "%+.1fpp"
        (100.
         *. (Stats.mean (Array.of_list !ctx_means)
             -. Stats.mean (Array.of_list !flat_means))) ];
  [ table ]
