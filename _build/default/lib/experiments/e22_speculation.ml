(* E22 — profile-guided speculative load scheduling (Moudgill & Moreno
   [29], §II.A.1): hoisting all loads pays the mis-speculation (value-
   check failure) rate of the whole program; hoisting only the loads the
   value profile calls invariant pays almost nothing. *)

let threshold = 0.9

let run () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E22 - Speculative-load value-check conflicts: all loads vs profile-selected (Inv-Top >= %.0f%%, test input)"
           (100. *. threshold))
      [ "program"; "load execs"; "conflict rate (all)";
        "selected loads"; "conflict rate (selected)"; "rate (rejected)" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let spec = Specul.run prog in
      let profile = Harness.full_profile w Workload.Test in
      let invariant_pc pc =
        match Profile.point_at profile pc with
        | Some p -> p.Profile.p_metrics.Metrics.inv_top >= threshold
        | None -> false
      in
      let selected =
        Array.to_list spec.Specul.loads
        |> List.filter (fun (l : Specul.load_report) -> invariant_pc l.sl_pc)
      in
      Table.add_row table
        [ w.wname;
          Table.count spec.Specul.total_executions;
          Table.pct (Specul.conflict_rate spec ~select:(fun _ -> true));
          Printf.sprintf "%d/%d" (List.length selected)
            (Array.length spec.Specul.loads);
          Table.pct
            (Specul.conflict_rate spec ~select:(fun l ->
                 invariant_pc l.Specul.sl_pc));
          Table.pct
            (Specul.conflict_rate spec ~select:(fun l ->
                 not (invariant_pc l.Specul.sl_pc))) ])
    Harness.workloads;
  [ table ]
