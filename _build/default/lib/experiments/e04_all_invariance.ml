(* E04 — invariance of all value-producing instructions, split by
   category (the thesis reports loads, ALU, and all instructions
   separately). *)

let categories =
  [ ("all", fun (_ : Profile.point) -> true);
    ("loads", fun p -> Isa.category p.Profile.p_instr = Isa.Load);
    ("alu", fun p -> Isa.category p.Profile.p_instr = Isa.Alu) ]

let run () =
  let table =
    Table.create
      ~title:
        "E04 - Instruction invariance by category (test input, weighted)"
      [ "program"; "class"; "points"; "LVP"; "Inv-Top"; "Inv-All"; "%zero" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let profile = Harness.full_profile w Workload.Test in
      let points = Harness.value_points profile in
      List.iter
        (fun (cname, pred) ->
          let sel = List.filter pred points in
          let wf field = Profile.weighted sel field in
          Table.add_row table
            [ w.wname; cname;
              string_of_int (List.length sel);
              Table.pct (wf (fun m -> m.Metrics.lvp));
              Table.pct (wf (fun m -> m.Metrics.inv_top));
              Table.pct (wf (fun m -> m.Metrics.inv_all));
              Table.pct (wf (fun m -> m.Metrics.zero)) ])
        categories;
      Table.add_sep table)
    Harness.workloads;
  [ table ]
