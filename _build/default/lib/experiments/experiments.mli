(** The experiment registry: every table and figure of the thesis's
    evaluation, reproduced. See DESIGN.md for the experiment ↔ paper
    artifact mapping and EXPERIMENTS.md for recorded results. *)

type spec = {
  id : string;  (** "e01" … "e14" *)
  title : string;
  paper_ref : string;  (** the thesis table/figure it regenerates *)
  run : unit -> Table.t list;
}

val all : spec list

(** Raises [Not_found] for unknown ids. *)
val find : string -> spec

(** Run one experiment and print its tables to stdout. *)
val print_one : spec -> unit

(** Run the whole suite in order, printing everything. *)
val print_all : unit -> unit
