lib/experiments/e24_phases.ml: Array Harness List Phaseprof Printf Sampler Stats Table Workload
