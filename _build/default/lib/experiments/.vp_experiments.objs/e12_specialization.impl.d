lib/experiments/e12_specialization.ml: Body Harness Int64 Isa List Printf Specialize Table Workload
