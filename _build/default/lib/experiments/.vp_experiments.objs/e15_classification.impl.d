lib/experiments/e15_classification.ml: Array Harness Hashtbl List Metrics Option Predictor Profile Table Workload
