lib/experiments/e02_bb_quantile.ml: Array Cfg Harness List Printf Table Workload
