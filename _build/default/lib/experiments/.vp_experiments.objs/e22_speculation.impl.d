lib/experiments/e22_speculation.ml: Array Harness List Metrics Printf Profile Specul Table Workload
