lib/experiments/e16_registers.ml: Array Harness Isa List Metrics Regprof Table Workload
