lib/experiments/e23_memoization.ml: Array Body Harness List Memoize Printf Procprof Table Workload Workloads
