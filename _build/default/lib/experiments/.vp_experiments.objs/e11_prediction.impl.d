lib/experiments/e11_prediction.ml: Harness List Predictor Table Workload
