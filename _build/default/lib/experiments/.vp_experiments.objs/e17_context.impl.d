lib/experiments/e17_context.ml: Array Ctxprof Harness List Printf Stats Table Workload
