lib/experiments/e08_replacement.ml: Atom Harness Int64 List Machine Oracle Printf Table Tnv Workload
