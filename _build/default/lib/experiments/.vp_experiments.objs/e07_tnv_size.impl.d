lib/experiments/e07_tnv_size.ml: Atom Harness Int64 List Machine Oracle Printf Table Tnv Workload
