lib/experiments/e03_load_invariance.ml: Array Harness List Metrics Profile Stats Table Workload
