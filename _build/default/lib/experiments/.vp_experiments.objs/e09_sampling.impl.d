lib/experiments/e09_sampling.ml: Array Harness List Printf Sampler Table Workload
