lib/experiments/harness.ml: Array Hashtbl Isa Machine Procprof Profile Workload Workloads
