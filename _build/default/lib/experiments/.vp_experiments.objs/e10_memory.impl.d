lib/experiments/e10_memory.ml: Array Harness List Memprof Metrics Table Workload
