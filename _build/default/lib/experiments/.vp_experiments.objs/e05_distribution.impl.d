lib/experiments/e05_distribution.ml: Array Harness Histogram List Metrics Printf Profile Table Workload
