lib/experiments/e06_cross_input.ml: Array Float Harness Isa List Metrics Profile Stats Table Workload
