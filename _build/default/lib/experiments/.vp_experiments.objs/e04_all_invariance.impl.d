lib/experiments/e04_all_invariance.ml: Harness Isa List Metrics Profile Table Workload
