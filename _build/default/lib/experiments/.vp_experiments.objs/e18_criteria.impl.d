lib/experiments/e18_criteria.ml: Array Harness List Printf Sampler Table Workload
