lib/experiments/e19_trivial.ml: Harness List Printf Table Trivprof Workload
