lib/experiments/e01_workloads.ml: Array Asm Atom Harness Isa List Machine Table Workload
