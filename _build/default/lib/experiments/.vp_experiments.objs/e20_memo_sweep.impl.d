lib/experiments/e20_memo_sweep.ml: Harness List Printf Procprof Table Workload
