lib/experiments/e14_overhead.ml: Harness List Printf Profile Sampler Table Workload
