lib/experiments/e21_clear_interval.ml: Atom Harness List Machine Oracle Printf Table Tnv Workload
