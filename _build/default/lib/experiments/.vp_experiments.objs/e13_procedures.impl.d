lib/experiments/e13_procedures.ml: Array Harness List Metrics Procprof String Table Workload
