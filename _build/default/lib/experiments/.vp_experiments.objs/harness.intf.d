lib/experiments/harness.mli: Machine Procprof Profile Workload
