(* E15 — profile-directed predictability classification (extension of the
   thesis's Gabbay [18] discussion): the value profile's delta (stride)
   table classifies every instruction as last-value-predictable,
   stride-predictable, or unpredictable, and a routed predictor gives each
   class its own table — or none. *)

let class_census_table () =
  let table =
    Table.create
      ~title:
        "E15a - Predictability classes by dynamic execution (profile-derived, test input)"
      [ "program"; "last-value"; "strided"; "unpredictable" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let profile = Harness.full_profile w Workload.Test in
      let weights = Hashtbl.create 4 in
      let bump cls n =
        Hashtbl.replace weights cls
          (n + Option.value ~default:0 (Hashtbl.find_opt weights cls))
      in
      Array.iter
        (fun (p : Profile.point) ->
          let m = p.p_metrics in
          if m.Metrics.total > 0 then
            bump (Metrics.predictor_class m) m.Metrics.total)
        profile.Profile.points;
      let total =
        Hashtbl.fold (fun _ n acc -> n + acc) weights 0 |> max 1
      in
      let pct cls =
        Table.pct
          (float_of_int (Option.value ~default:0 (Hashtbl.find_opt weights cls))
           /. float_of_int total)
      in
      Table.add_row table
        [ w.wname; pct Metrics.Last_value; pct Metrics.Strided;
          pct Metrics.Unpredictable ])
    Harness.workloads;
  table

let routed_table () =
  let table =
    Table.create
      ~title:
        "E15b - Routed prediction: profile chooses the predictor per instruction (256-entry tables)"
      [ "program"; "predictor"; "coverage"; "accuracy"; "correct rate";
        "evictions" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let profile = Harness.full_profile w Workload.Test in
      let predictors =
        [ Predictor.lvp ~bits:8 ();
          Predictor.stride ~bits:8 ();
          Predictor.hybrid (Predictor.lvp ~bits:8 ()) (Predictor.stride ~bits:8 ());
          Predictor.routed ~profile
            ~last_value:(Predictor.lvp ~bits:8 ())
            ~strided:(Predictor.stride ~bits:8 ())
            () ]
      in
      let results = Predictor.simulate (w.wbuild Workload.Test) predictors in
      List.iter
        (fun (r : Predictor.result) ->
          Table.add_row table
            [ w.wname; r.pr_name;
              Table.pct r.pr_coverage;
              Table.pct r.pr_accuracy;
              Table.pct r.pr_correct_rate;
              Table.count r.pr_evictions ])
        results;
      Table.add_sep table)
    Harness.workloads;
  table

let run () = [ class_census_table (); routed_table () ]
