(* E19 — trivial computation (Richardson [32]): the fraction of dynamic
   arithmetic whose operands make the result immediate, split into cases a
   compiler could see statically (immediate operands) and cases only a
   value profile reveals (run-time register values). *)

let run () =
  let table =
    Table.create
      ~title:"E19 - Trivial arithmetic operations (Richardson [32], test input)"
      [ "program"; "alu events"; "measured"; "trivial"; "via immediate";
        "via run-time value"; "top kind" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let r = Trivprof.run (w.wbuild Workload.Test) in
      Table.add_row table
        [ w.wname;
          Table.count r.Trivprof.alu_events;
          Table.count r.Trivprof.measured;
          Table.pct (Trivprof.trivial_fraction r);
          Table.count r.Trivprof.trivial_imm;
          Table.count r.Trivprof.trivial_dyn;
          (match r.Trivprof.by_kind with
           | [] -> "-"
           | (k, n) :: _ -> Printf.sprintf "%s (%s)" k (Table.count n)) ])
    Harness.workloads;
  [ table ]
