(* E11 — value prediction (§II.A and the Gabbay [18] question): standard
   predictor models on our event stream, then profile-guided filtering —
   using the value profile to keep variant instructions out of a small
   predictor table trades coverage for accuracy and fewer conflicts. *)

let standard_predictors () =
  [ Predictor.lvp ~bits:10 ();
    Predictor.stride ~bits:10 ();
    Predictor.fcm ~bits:12 ();
    Predictor.hybrid (Predictor.lvp ~bits:10 ()) (Predictor.stride ~bits:10 ());
    Predictor.perfect_last () ]

let models_table () =
  let table =
    Table.create
      ~title:
        "E11a - Value predictor models (all value instructions, test input)"
      [ "program"; "predictor"; "coverage"; "accuracy"; "correct rate" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let results =
        Predictor.simulate (w.wbuild Workload.Test) (standard_predictors ())
      in
      List.iter
        (fun (r : Predictor.result) ->
          Table.add_row table
            [ w.wname; r.pr_name;
              Table.pct r.pr_coverage;
              Table.pct r.pr_accuracy;
              Table.pct r.pr_correct_rate ])
        results;
      Table.add_sep table)
    Harness.workloads;
  table

let filtered_table () =
  let table =
    Table.create
      ~title:
        "E11b - Profile-guided prediction with a small (64-entry) LVP table"
      [ "program"; "predictor"; "coverage"; "accuracy"; "evictions" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let profile = Harness.full_profile w Workload.Test in
      let unfiltered = Predictor.lvp ~bits:6 () in
      let filtered =
        Predictor.filtered ~profile ~threshold:0.5 (Predictor.lvp ~bits:6 ())
      in
      let results =
        Predictor.simulate (w.wbuild Workload.Test) [ unfiltered; filtered ]
      in
      List.iter
        (fun (r : Predictor.result) ->
          Table.add_row table
            [ w.wname; r.pr_name;
              Table.pct r.pr_coverage;
              Table.pct r.pr_accuracy;
              Table.count r.pr_evictions ])
        results;
      Table.add_sep table)
    Harness.workloads;
  table

let run () = [ models_table (); filtered_table () ]
