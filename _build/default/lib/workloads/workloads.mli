(** Registry of all workloads, in the fixed order the experiment tables
    use. *)

val all : Workload.t list

(** Look a workload up by name; raises [Not_found]. *)
val find : string -> Workload.t

val names : string list
