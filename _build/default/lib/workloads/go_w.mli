(** Board-evaluation workload, modeled on 099.go. *)

val workload : Workload.t
