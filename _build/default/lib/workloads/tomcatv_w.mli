(** Mesh-relaxation workload, modeled on 101.tomcatv. *)

val workload : Workload.t
