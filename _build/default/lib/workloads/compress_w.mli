(** LZW-style compression workload, modeled on 129.compress. *)

val workload : Workload.t
