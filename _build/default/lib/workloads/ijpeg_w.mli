(** Image-transform workload, modeled on 132.ijpeg. *)

val workload : Workload.t
