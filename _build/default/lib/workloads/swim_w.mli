(** Stencil-relaxation workload, modeled on 102.swim. *)

val workload : Workload.t
