let all =
  [ Compress_w.workload;
    Cc_w.workload;
    Go_w.workload;
    Ijpeg_w.workload;
    Li_w.workload;
    Perl_w.workload;
    M88ksim_w.workload;
    Vortex_w.workload;
    Alvinn_w.workload;
    Swim_w.workload;
    Tomcatv_w.workload;
    Fpppp_w.workload ]

let find name =
  match List.find_opt (fun w -> w.Workload.wname = name) all with
  | Some w -> w
  | None -> raise Not_found

let names = List.map (fun w -> w.Workload.wname) all
