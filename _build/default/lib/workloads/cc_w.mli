(** Token-dispatch workload, modeled on 126.gcc. *)

val workload : Workload.t
