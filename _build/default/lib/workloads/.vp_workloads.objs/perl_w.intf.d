lib/workloads/perl_w.mli: Workload
