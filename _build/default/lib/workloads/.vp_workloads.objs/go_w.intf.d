lib/workloads/go_w.mli: Workload
