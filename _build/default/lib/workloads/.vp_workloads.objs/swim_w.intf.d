lib/workloads/swim_w.mli: Workload
