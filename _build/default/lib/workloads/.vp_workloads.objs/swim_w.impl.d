lib/workloads/swim_w.ml: Array Asm Int64 Isa Rng Workload
