lib/workloads/ijpeg_w.ml: Array Asm Int64 Isa Rng Workload
