lib/workloads/workload.ml: Asm Hashtbl Int64 Printf Rng
