lib/workloads/tomcatv_w.mli: Workload
