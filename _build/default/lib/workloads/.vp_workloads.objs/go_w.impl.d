lib/workloads/go_w.ml: Array Asm Int64 Isa Rng Workload
