lib/workloads/workloads.ml: Alvinn_w Cc_w Compress_w Fpppp_w Go_w Ijpeg_w Li_w List M88ksim_w Perl_w Swim_w Tomcatv_w Vortex_w Workload
