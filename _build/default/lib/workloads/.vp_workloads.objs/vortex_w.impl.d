lib/workloads/vortex_w.ml: Array Asm Fun Int64 Isa List Rng Workload
