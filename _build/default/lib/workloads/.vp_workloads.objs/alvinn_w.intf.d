lib/workloads/alvinn_w.mli: Workload
