lib/workloads/li_w.ml: Asm Int64 Isa Workload
