lib/workloads/li_w.mli: Workload
