lib/workloads/workload.mli: Asm Rng
