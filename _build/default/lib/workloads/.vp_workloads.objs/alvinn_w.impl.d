lib/workloads/alvinn_w.ml: Array Asm Int64 Isa Rng Workload
