lib/workloads/fpppp_w.mli: Workload
