lib/workloads/compress_w.mli: Workload
