lib/workloads/m88ksim_w.mli: Workload
