lib/workloads/compress_w.ml: Array Asm Int64 Isa Rng Workload
