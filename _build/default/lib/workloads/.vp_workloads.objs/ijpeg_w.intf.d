lib/workloads/ijpeg_w.mli: Workload
