lib/workloads/m88ksim_w.ml: Asm Int64 Isa Workload
