lib/workloads/cc_w.mli: Workload
