lib/workloads/vortex_w.mli: Workload
