(** String-hashing workload, modeled on 134.perl. *)

val workload : Workload.t
