(** Object-database workload, modeled on 147.vortex. *)

val workload : Workload.t
