(** CPU-simulator workload, modeled on 124.m88ksim. *)

val workload : Workload.t
