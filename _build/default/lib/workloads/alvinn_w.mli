(** Neural-network workload, modeled on 104.alvinn. *)

val workload : Workload.t
