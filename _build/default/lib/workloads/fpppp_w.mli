(** Dense linear-algebra workload, modeled on 145.fpppp. *)

val workload : Workload.t
