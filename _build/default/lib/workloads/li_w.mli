(** Bytecode-interpreter workload, modeled on 130.li. *)

val workload : Workload.t
