(** Hardware value-predictor models (§II.A and Chapter IX context).

    The thesis motivates value profiling with value prediction [17,27,28]:
    a Value History Table indexed by PC predicts an instruction's next
    output. This module implements the standard models — last-value (LVP),
    stride, finite-context (2-level), and hybrids — plus the
    profile-guided filtering the thesis proposes: use the off-line value
    profile to decide {e which} instructions may use the predictor, raising
    accuracy and table utilization (Gabbay [18]).

    Predictors are first-class values with mutable internal state; create a
    fresh one per simulation. *)

type t

val name : t -> string

(** [predict t ~pc] — the predicted value, or [None] when the predictor is
    not confident (cold entry, tag mismatch, low confidence counter). *)
val predict : t -> pc:int -> int64 option

(** [update t ~pc value] — inform the predictor of the actual outcome. *)
val update : t -> pc:int -> int64 -> unit

(** Tag-mismatch replacements suffered by the predictor's table — the
    aliasing measure used by the utilization experiment. *)
val evictions : t -> int

(** Last-value predictor: direct-mapped table of [2^bits] entries, each
    with tag, value, and a saturating 2-bit confidence counter; predicts
    when confidence is at least [conf_threshold] (default 1). *)
val lvp : ?bits:int -> ?conf_threshold:int -> unit -> t

(** Stride predictor: predicts [last + stride]; stride 0 degenerates to
    last-value, as §II notes. *)
val stride : ?bits:int -> ?conf_threshold:int -> unit -> t

(** Finite-context-method (2-level) predictor: a hash of the last
    [history] values selects the prediction. *)
val fcm : ?bits:int -> ?history:int -> unit -> t

(** [hybrid a b] — per-PC chooser (saturating counter) between two
    component predictors, as in Wang & Franklin [39]. *)
val hybrid : t -> t -> t

(** Unbounded, untagged last-value predictor — the aliasing-free upper
    bound for LVP. *)
val perfect_last : unit -> t

(** [filtered ~profile ~threshold p] — profile-guided gating: [p] is
    consulted and trained only at PCs whose profiled Inv-Top is at least
    [threshold]; other PCs never enter the table. *)
val filtered : profile:Profile.t -> threshold:float -> t -> t

(** [routed ~profile ~last_value ~strided ()] — profile-directed predictor
    selection: each PC is statically routed by its
    {!Metrics.predictor_class} to the last-value component, the stride
    component, or to no predictor at all (unpredictable PCs never touch a
    table). This is the thesis's classification idea taken one step past
    {!filtered}: the profile chooses not just {e whether} but {e which}
    predictor an instruction may use. *)
val routed :
  ?threshold:float -> profile:Profile.t -> last_value:t -> strided:t -> unit -> t

type result = {
  pr_name : string;
  pr_events : int;  (** dynamic value-producing events simulated *)
  pr_predicted : int;  (** confident predictions issued *)
  pr_correct : int;
  pr_accuracy : float;  (** correct / predicted *)
  pr_coverage : float;  (** predicted / events *)
  pr_correct_rate : float;  (** correct / events *)
  pr_evictions : int;
}

(** Run the program once and drive every predictor in the list from the
    same event stream. *)
val simulate :
  ?selection:Atom.selection -> ?fuel:int -> Asm.program -> t list -> result list
