(** Basic-block discovery (leader analysis) over assembled programs.

    A block is a maximal straight-line run of instructions inside one
    procedure: it starts at a leader (procedure entry, branch/call target,
    or successor of a control instruction) and ends at the next control
    instruction or leader. Used by the Basic Block Quantile Table (E02) and
    by block-granularity instrumentation. *)

type block = {
  bindex : int;
  bfirst : int;  (** pc of the leader *)
  blast : int;  (** pc of the final instruction (inclusive) *)
  bproc : int;  (** owning procedure index, [-1] if outside any *)
}

(** All blocks in ascending [bfirst] order. *)
val build : Asm.program -> block array

(** Block containing [pc] (binary search). Raises [Not_found] when [pc] is
    outside the code. *)
val block_of_pc : block array -> int -> block

(** Dynamic execution count of each block after a run: the count of its
    leader instruction. *)
val dynamic_counts : Machine.t -> block array -> int array
