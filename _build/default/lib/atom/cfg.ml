type block = { bindex : int; bfirst : int; blast : int; bproc : int }

let build (prog : Asm.program) =
  let n = Array.length prog.code in
  let leader = Array.make n false in
  Array.iter (fun (p : Asm.proc) -> leader.(p.pentry) <- true) prog.procs;
  Array.iteri
    (fun pc instr ->
      List.iter
        (fun t -> if t >= 0 && t < n then leader.(t) <- true)
        (Isa.targets instr);
      if Isa.is_control instr && pc + 1 < n then leader.(pc + 1) <- true)
    prog.code;
  if n > 0 then leader.(0) <- true;
  let proc_of = Array.make n (-1) in
  Array.iter
    (fun (p : Asm.proc) ->
      for pc = p.pentry to p.pentry + p.plength - 1 do
        proc_of.(pc) <- p.pindex
      done)
    prog.procs;
  let blocks = ref [] in
  let start = ref 0 in
  let flush last =
    if last >= !start then
      blocks := { bindex = 0; bfirst = !start; blast = last; bproc = proc_of.(!start) } :: !blocks
  in
  for pc = 0 to n - 1 do
    (* A block also ends at a procedure boundary. *)
    if pc > !start && (leader.(pc) || proc_of.(pc) <> proc_of.(!start)) then begin
      flush (pc - 1);
      start := pc
    end;
    if Isa.is_control prog.code.(pc) && pc < n - 1 then begin
      flush pc;
      start := pc + 1
    end
  done;
  if n > 0 && !start <= n - 1 then flush (n - 1);
  let arr = Array.of_list (List.rev !blocks) in
  Array.mapi (fun i b -> { b with bindex = i }) arr

let block_of_pc blocks pc =
  let lo = ref 0 and hi = ref (Array.length blocks - 1) in
  let found = ref None in
  while !lo <= !hi && !found = None do
    let mid = (!lo + !hi) / 2 in
    let b = blocks.(mid) in
    if pc < b.bfirst then hi := mid - 1
    else if pc > b.blast then lo := mid + 1
    else found := Some b
  done;
  match !found with Some b -> b | None -> raise Not_found

let dynamic_counts machine blocks =
  Array.map (fun b -> Machine.exec_count machine b.bfirst) blocks
