lib/atom/atom.ml: Array Asm Hashtbl Isa List Machine Option
