lib/atom/cfg.mli: Asm Machine
