lib/atom/cfg.ml: Array Asm Isa List Machine
