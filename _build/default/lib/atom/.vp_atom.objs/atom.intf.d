lib/atom/atom.mli: Asm Isa Machine
