(** Textual assembly: parse programs from source text, and emit programs
    back to parseable text. The eDSL ({!Asm}) is the native interface;
    this is the file format, so users can profile programs without
    writing OCaml.

    Syntax (one statement per line; [;] starts a comment):

    {v
    .entry main              ; optional, defaults to "main"
    .data table 1 2 0x2A -7  ; named, initialized words
    .reserve buf 64          ; named, zeroed words

    .proc sum                ; procedure body until .end
      ldi  t1, @table        ; @name = address of a data block,
      ldi  t2, @sum          ;         or code index of a procedure/label
    loop:
      add  t3, t1, t0        ; dst, src1, src2 (register or #immediate)
      ld   t4, [t3+0]        ; loads/stores: [base+off] or [base-off]
      st   t4, [t3+1]
      add  t0, t0, #1
      blt  t0, loop          ; beq/bne/blt/ble/bgt/bge reg, label
      jsr  helper            ; direct call
      jsr  (t2)              ; indirect call
      ret
    .end
    v}

    Mnemonics: [add sub mul div rem and or xor sll srl sra cmpeq cmplt
    cmple cmpult ldi ld st beq bne blt ble bgt bge jmp jsr ret halt nop]
    and the [mov dst, src] idiom. Registers: [v0 a0..a5 t0..t7 s0..s5 sp
    zero] or [r0..r31]. Numbers: decimal or [0x] hex, optionally negative. *)

exception Parse_error of int * string  (** line number, message *)

val parse : string -> Asm.program

(** Raises [Sys_error] on unreadable files, {!Parse_error} on bad input. *)
val parse_file : string -> Asm.program

(** Emit a program as parseable source ([parse (emit p)] reconstructs a
    structurally identical program: same code, procedures, data, entry).
    Data blocks are named [d0, d1, …]; branch targets become local labels. *)
val emit : Asm.program -> string
