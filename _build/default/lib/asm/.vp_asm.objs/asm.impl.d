lib/asm/asm.ml: Array Buffer Hashtbl Int64 Isa List Printf
