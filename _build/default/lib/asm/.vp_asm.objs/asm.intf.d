lib/asm/asm.mli: Isa
