lib/asm/parser.mli: Asm
