lib/asm/parser.ml: Array Asm Buffer Fun Hashtbl Int64 Isa List Printf String
