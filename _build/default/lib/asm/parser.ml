exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* --- lexical helpers --- *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

(* Split an operand list on commas, trimming each piece. *)
let split_operands s =
  if trim s = "" then []
  else String.split_on_char ',' s |> List.map trim

(* First word and the rest of the line. *)
let split_word s =
  let s = trim s in
  match String.index_opt s ' ' with
  | None ->
    (match String.index_opt s '\t' with
     | None -> (s, "")
     | Some i -> (String.sub s 0 i, trim (String.sub s i (String.length s - i))))
  | Some i -> (String.sub s 0 i, trim (String.sub s i (String.length s - i)))

let reg_table =
  let t = Hashtbl.create 64 in
  for r = 0 to Isa.num_regs - 1 do
    Hashtbl.replace t (Printf.sprintf "r%d" r) r;
    Hashtbl.replace t (Isa.string_of_reg r) r
  done;
  t

let parse_reg line s =
  match Hashtbl.find_opt reg_table (String.lowercase_ascii s) with
  | Some r -> r
  | None -> fail line (Printf.sprintf "unknown register %S" s)

let parse_int64 line s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "bad number %S" s)

(* [base+off], [base-off], [base] *)
let parse_mem line s =
  let n = String.length s in
  if n < 3 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line (Printf.sprintf "expected [reg+off], got %S" s);
  let inner = String.sub s 1 (n - 2) in
  let split_at i =
    ( trim (String.sub inner 0 i),
      trim (String.sub inner i (String.length inner - i)) )
  in
  let reg_s, off_s =
    match String.index_opt inner '+' with
    | Some i -> (fst (split_at i), String.sub inner (i + 1) (String.length inner - i - 1))
    | None ->
      (match String.index_opt inner '-' with
       | Some i -> (fst (split_at i), String.sub inner i (String.length inner - i))
       | None -> (trim inner, "0"))
  in
  let off =
    match int_of_string_opt (trim off_s) with
    | Some v -> v
    | None -> fail line (Printf.sprintf "bad offset in %S" s)
  in
  (parse_reg line reg_s, off)

type operand_kind =
  | OReg of Isa.reg
  | OImm of int64
  | OAddr of string (* @name *)

let parse_operand line s =
  if s = "" then fail line "empty operand"
  else if s.[0] = '#' then
    OImm (parse_int64 line (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '@' then OAddr (String.sub s 1 (String.length s - 1))
  else
    match Hashtbl.find_opt reg_table (String.lowercase_ascii s) with
    | Some r -> OReg r
    | None ->
      (match Int64.of_string_opt s with
       | Some v -> OImm v
       | None -> fail line (Printf.sprintf "bad operand %S" s))

let binops =
  [ ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul); ("div", Isa.Div);
    ("rem", Isa.Rem); ("and", Isa.And); ("or", Isa.Or); ("xor", Isa.Xor);
    ("sll", Isa.Sll); ("srl", Isa.Srl); ("sra", Isa.Sra);
    ("cmpeq", Isa.Cmpeq); ("cmplt", Isa.Cmplt); ("cmple", Isa.Cmple);
    ("cmpult", Isa.Cmpult) ]

let branches =
  [ ("beq", Isa.Eq); ("bne", Isa.Ne); ("blt", Isa.Lt); ("ble", Isa.Le);
    ("bgt", Isa.Gt); ("bge", Isa.Ge) ]

(* --- first pass: directives layout --- *)

type line_kind =
  | Blank
  | Directive of string * string (* name, rest *)
  | Label of string
  | Instr of string * string (* mnemonic, operands *)

let classify line_no raw =
  let s = trim (strip_comment raw) in
  if s = "" then Blank
  else if s.[0] = '.' then begin
    let word, rest = split_word s in
    Directive (word, rest)
  end
  else if s.[String.length s - 1] = ':' then begin
    let name = trim (String.sub s 0 (String.length s - 1)) in
    if name = "" || String.exists is_space name then
      fail line_no (Printf.sprintf "bad label %S" s);
    Label name
  end
  else begin
    let word, rest = split_word s in
    Instr (String.lowercase_ascii word, rest)
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let classified = List.mapi (fun i raw -> (i + 1, classify (i + 1) raw)) lines in
  let b = Asm.create () in
  (* pass 1: allocate every data block, in order, recording addresses *)
  let data_addrs = Hashtbl.create 16 in
  let add_block line name addr =
    if Hashtbl.mem data_addrs name then
      fail line (Printf.sprintf "duplicate data block %S" name);
    Hashtbl.replace data_addrs name addr
  in
  let tokens s =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  List.iter
    (fun (line, kind) ->
      match kind with
      | Directive (".data", rest) ->
        (match tokens rest with
         | name :: (_ :: _ as words) ->
           let values = Array.of_list (List.map (parse_int64 line) words) in
           add_block line name (Asm.data b values)
         | _ -> fail line ".data needs a name and at least one value")
      | Directive (".reserve", rest) ->
        (match tokens rest with
         | [ name; n ] ->
           (match int_of_string_opt n with
            | Some n when n > 0 -> add_block line name (Asm.reserve b n)
            | Some _ | None -> fail line ".reserve size must be a positive integer")
         | _ -> fail line ".reserve needs a name and a size")
      | Directive _ | Blank | Label _ | Instr _ -> ())
    classified;
  (* pass 2: procedures and instructions *)
  let entry = ref "main" in
  let in_proc = ref false in
  let resolve_value line = function
    | OImm v -> v
    | OAddr name ->
      (match Hashtbl.find_opt data_addrs name with
       | Some addr -> addr
       | None -> fail line (Printf.sprintf "unknown data block %S (code labels need code_addr support via ldi @proc only for data; use jsr)" name))
    | OReg _ -> fail line "expected an immediate or @name"
  in
  let emit_instr line mnem operands =
    if not !in_proc then fail line "instruction outside .proc";
    let ops = split_operands operands in
    match (List.assoc_opt mnem binops, ops) with
    | Some op, [ dst; src1; src2 ] ->
      let dst = parse_reg line dst and src1 = parse_reg line src1 in
      (match parse_operand line src2 with
       | OReg r -> Asm.bin b op ~dst src1 (Isa.Reg r)
       | OImm v -> Asm.bin b op ~dst src1 (Isa.Imm v)
       | OAddr name -> Asm.bin b op ~dst src1 (Isa.Imm (resolve_value line (OAddr name))))
    | Some _, _ -> fail line (mnem ^ " expects: dst, src1, src2")
    | None, _ ->
      (match (List.assoc_opt mnem branches, ops) with
       | Some cond, [ reg; target ] ->
         Asm.br b cond (parse_reg line reg) target
       | Some _, _ -> fail line (mnem ^ " expects: reg, label")
       | None, _ ->
         (match (mnem, ops) with
          | "ldi", [ rd; v ] ->
            let rd = parse_reg line rd in
            (match parse_operand line v with
             | OImm imm -> Asm.ldi b rd imm
             | OAddr name ->
               (match Hashtbl.find_opt data_addrs name with
                | Some addr -> Asm.ldi b rd addr
                | None -> Asm.code_addr_of b ~dst:rd name)
             | OReg _ -> fail line "ldi takes an immediate or @name")
          | "mov", [ dst; src ] ->
            Asm.mov b ~dst:(parse_reg line dst) (parse_reg line src)
          | "ld", [ rd; mem ] ->
            let base, off = parse_mem line mem in
            Asm.ld b ~dst:(parse_reg line rd) ~base ~off
          | "st", [ ra; mem ] ->
            let base, off = parse_mem line mem in
            Asm.st b ~src:(parse_reg line ra) ~base ~off
          | "jmp", [ target ] -> Asm.jmp b target
          | "jsr", [ target ] ->
            let n = String.length target in
            if n >= 3 && target.[0] = '(' && target.[n - 1] = ')' then
              Asm.call_ind b (parse_reg line (String.sub target 1 (n - 2)))
            else Asm.call b target
          | "ret", [] -> Asm.ret b
          | "halt", [] -> Asm.halt b
          | "nop", [] -> Asm.nop b
          | _, _ -> fail line (Printf.sprintf "unknown instruction %S" mnem)))
  in
  let pending : (int * line_kind) list ref = ref [] in
  let flush_proc line name =
    Asm.proc b name (fun _ ->
        List.iter
          (fun (l, kind) ->
            match kind with
            | Label lbl -> Asm.label b lbl
            | Instr (m, ops) -> emit_instr l m ops
            | Blank | Directive _ -> ())
          (List.rev !pending));
    ignore line;
    pending := []
  in
  let current_proc = ref None in
  List.iter
    (fun (line, kind) ->
      match kind with
      | Blank -> ()
      | Directive (".data", _) | Directive (".reserve", _) -> ()
      | Directive (".entry", rest) ->
        if trim rest = "" then fail line ".entry needs a name";
        entry := trim rest
      | Directive (".proc", rest) ->
        if !in_proc then fail line "nested .proc";
        let name = trim rest in
        if name = "" then fail line ".proc needs a name";
        in_proc := true;
        current_proc := Some name
      | Directive (".end", _) ->
        (match !current_proc with
         | None -> fail line ".end without .proc"
         | Some name ->
           (* emit the collected body now *)
           (try flush_proc line name with
            | Failure msg -> fail line msg);
           in_proc := false;
           current_proc := None)
      | Directive (d, _) -> fail line (Printf.sprintf "unknown directive %S" d)
      | Label _ | Instr _ ->
        if not !in_proc then fail line "code outside .proc";
        pending := (line, kind) :: !pending)
    classified;
  if !in_proc then fail (List.length lines) "missing .end";
  match Asm.assemble b ~entry:!entry with
  | prog -> prog
  | exception Failure msg -> fail 0 msg

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))

(* --- emitter --- *)

let emit (prog : Asm.program) =
  let buf = Buffer.create 4096 in
  let entry_proc =
    match
      Array.find_opt (fun (p : Asm.proc) -> p.pentry = prog.entry) prog.procs
    with
    | Some p -> p.pname
    | None -> "main"
  in
  Buffer.add_string buf (Printf.sprintf ".entry %s\n" entry_proc);
  List.iteri
    (fun i (_, words) ->
      Buffer.add_string buf (Printf.sprintf ".data d%d" i);
      Array.iter (fun w -> Buffer.add_string buf (Printf.sprintf " %Ld" w)) words;
      Buffer.add_char buf '\n')
    prog.data;
  (* label every branch/jump/call target *)
  let targeted = Array.make (Array.length prog.code) false in
  Array.iter
    (fun instr -> List.iter (fun t -> targeted.(t) <- true) (Isa.targets instr))
    prog.code;
  let name_of_target t =
    match
      Array.find_opt (fun (p : Asm.proc) -> p.pentry = t) prog.procs
    with
    | Some p -> p.pname
    | None -> Printf.sprintf "L%d" t
  in
  let operand = function
    | Isa.Reg r -> Isa.string_of_reg r
    | Isa.Imm v -> Printf.sprintf "#%Ld" v
  in
  Array.iter
    (fun (p : Asm.proc) ->
      Buffer.add_string buf (Printf.sprintf "\n.proc %s\n" p.pname);
      for pc = p.pentry to p.pentry + p.plength - 1 do
        if targeted.(pc) && pc <> p.pentry then
          Buffer.add_string buf (Printf.sprintf "L%d:\n" pc);
        let line =
          match prog.code.(pc) with
          | Isa.Op (op, ra, ob, rc) ->
            Printf.sprintf "%s %s, %s, %s"
              (List.assoc op (List.map (fun (n, o) -> (o, n)) binops))
              (Isa.string_of_reg rc) (Isa.string_of_reg ra) (operand ob)
          | Isa.Ldi (rd, v) ->
            Printf.sprintf "ldi %s, #%Ld" (Isa.string_of_reg rd) v
          | Isa.Ld (rd, rb, off) ->
            Printf.sprintf "ld %s, [%s%+d]" (Isa.string_of_reg rd)
              (Isa.string_of_reg rb) off
          | Isa.St (ra, rb, off) ->
            Printf.sprintf "st %s, [%s%+d]" (Isa.string_of_reg ra)
              (Isa.string_of_reg rb) off
          | Isa.Br (c, r, t) ->
            Printf.sprintf "b%s %s, %s" (Isa.string_of_cond c)
              (Isa.string_of_reg r) (name_of_target t)
          | Isa.Jmp t -> Printf.sprintf "jmp %s" (name_of_target t)
          | Isa.Jsr t -> Printf.sprintf "jsr %s" (name_of_target t)
          | Isa.Jsr_ind r -> Printf.sprintf "jsr (%s)" (Isa.string_of_reg r)
          | Isa.Ret -> "ret"
          | Isa.Halt -> "halt"
          | Isa.Nop -> "nop"
        in
        Buffer.add_string buf ("  " ^ line ^ "\n")
      done;
      Buffer.add_string buf ".end\n")
    prog.procs;
  Buffer.contents buf
