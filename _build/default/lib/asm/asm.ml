type proc = { pname : string; pentry : int; plength : int; pindex : int }

type program = {
  code : Isa.instr array;
  procs : proc array;
  data : (int64 * int64 array) list;
  entry : int;
}

let proc_of_pc program pc =
  let found = ref None in
  Array.iter
    (fun p ->
      if pc >= p.pentry && pc < p.pentry + p.plength then found := Some p)
    program.procs;
  match !found with Some p -> p | None -> raise Not_found

let find_proc program name =
  match Array.find_opt (fun p -> p.pname = name) program.procs with
  | Some p -> p
  | None -> raise Not_found

let disassemble program =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "%s:  ; entry=%d len=%d\n" p.pname p.pentry p.plength);
      for pc = p.pentry to p.pentry + p.plength - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  %4d  %s\n" pc (Isa.to_string program.code.(pc)))
      done)
    program.procs;
  Buffer.contents buf

(* Instructions whose targets are still symbolic. *)
type uinstr =
  | UPlain of Isa.instr
  | UBr of Isa.cond * Isa.reg * string
  | UJmp of string
  | UJsr of string
  | ULdi_label of Isa.reg * string

type builder = {
  mutable items : uinstr list; (* reversed *)
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable procs_rev : (string * int * int) list; (* name, entry, length *)
  mutable data_rev : (int64 * int64 array) list;
  mutable data_cursor : int64;
  mutable in_proc : bool;
}

let data_base = 0x1_0000L

let create () =
  { items = []; count = 0; labels = Hashtbl.create 64; procs_rev = [];
    data_rev = []; data_cursor = data_base; in_proc = false }

let emit b u =
  if not b.in_proc then failwith "Asm: instruction emitted outside a procedure";
  b.items <- u :: b.items;
  b.count <- b.count + 1

let define_label b name =
  if Hashtbl.mem b.labels name then
    failwith (Printf.sprintf "Asm: duplicate label %S" name);
  Hashtbl.replace b.labels name b.count

let label b name = define_label b name

let proc b name body =
  if b.in_proc then failwith "Asm: nested procedures are not supported";
  define_label b name;
  let entry = b.count in
  b.in_proc <- true;
  body b;
  b.in_proc <- false;
  let length = b.count - entry in
  if length = 0 then failwith (Printf.sprintf "Asm: empty procedure %S" name);
  b.procs_rev <- (name, entry, length) :: b.procs_rev

let data b words =
  let base = b.data_cursor in
  b.data_rev <- (base, Array.copy words) :: b.data_rev;
  b.data_cursor <- Int64.add b.data_cursor (Int64.of_int (Array.length words));
  base

let reserve b n = data b (Array.make n 0L)

let bin b op ~dst ra operand = emit b (UPlain (Isa.Op (op, ra, operand, dst)))

let rr op b ~dst ra rb = bin b op ~dst ra (Isa.Reg rb)
let ri op b ~dst ra imm = bin b op ~dst ra (Isa.Imm imm)

let add = rr Isa.Add
let sub = rr Isa.Sub
let mul = rr Isa.Mul
let div = rr Isa.Div
let rem = rr Isa.Rem
let and_ = rr Isa.And
let or_ = rr Isa.Or
let xor = rr Isa.Xor
let sll = rr Isa.Sll
let srl = rr Isa.Srl
let sra = rr Isa.Sra
let cmpeq = rr Isa.Cmpeq
let cmplt = rr Isa.Cmplt
let cmple = rr Isa.Cmple

let addi = ri Isa.Add
let subi = ri Isa.Sub
let muli = ri Isa.Mul
let divi = ri Isa.Div
let remi = ri Isa.Rem
let andi = ri Isa.And
let ori = ri Isa.Or
let xori = ri Isa.Xor
let slli = ri Isa.Sll
let srli = ri Isa.Srl
let srai = ri Isa.Sra
let cmpeqi = ri Isa.Cmpeq
let cmplti = ri Isa.Cmplt
let cmplei = ri Isa.Cmple

let ldi b rd v = emit b (UPlain (Isa.Ldi (rd, v)))
let mov b ~dst src = addi b ~dst src 0L
let ld b ~dst ~base ~off = emit b (UPlain (Isa.Ld (dst, base, off)))
let st b ~src ~base ~off = emit b (UPlain (Isa.St (src, base, off)))
let br b c r target = emit b (UBr (c, r, target))
let jmp b target = emit b (UJmp target)
let call b target = emit b (UJsr target)
let call_ind b r = emit b (UPlain (Isa.Jsr_ind r))
let ret b = emit b (UPlain Isa.Ret)
let halt b = emit b (UPlain Isa.Halt)
let nop b = emit b (UPlain Isa.Nop)
let code_addr_of b ~dst name = emit b (ULdi_label (dst, name))

let assemble b ~entry =
  if b.in_proc then failwith "Asm.assemble: still inside a procedure";
  let resolve name =
    match Hashtbl.find_opt b.labels name with
    | Some idx -> idx
    | None -> failwith (Printf.sprintf "Asm: undefined label %S" name)
  in
  let items = Array.of_list (List.rev b.items) in
  let code =
    Array.map
      (function
        | UPlain i -> i
        | UBr (c, r, t) -> Isa.Br (c, r, resolve t)
        | UJmp t -> Isa.Jmp (resolve t)
        | UJsr t -> Isa.Jsr (resolve t)
        | ULdi_label (rd, t) -> Isa.Ldi (rd, Int64.of_int (resolve t)))
      items
  in
  let procs =
    Array.of_list (List.rev b.procs_rev)
    |> Array.mapi (fun i (pname, pentry, plength) ->
           { pname; pentry; plength; pindex = i })
  in
  let entry_idx = resolve entry in
  if not (Array.exists (fun p -> p.pentry = entry_idx) procs) then
    failwith (Printf.sprintf "Asm: entry %S is not a procedure" entry);
  { code; procs; data = List.rev b.data_rev; entry = entry_idx }
