(** Program construction: an assembler eDSL over {!Vp_isa.Isa}.

    Workloads are built by emitting instructions into a {!builder} inside
    {!proc} bodies, using string labels for control flow. {!assemble}
    resolves labels to absolute code indices and produces the immutable
    {!program} that the machine executes and the profiler instruments.

    Memory is word-addressed: addresses count 64-bit words, not bytes.
    {!data} allocates initialized words in the data segment and returns the
    base address so builders can bake it into [ldi] instructions. *)

type proc = {
  pname : string;
  pentry : int;  (** code index of the first instruction *)
  plength : int;  (** number of instructions, contiguous *)
  pindex : int;  (** position in [procs] *)
}

type program = {
  code : Isa.instr array;
  procs : proc array;
  data : (int64 * int64 array) list;  (** (base address, initial words) *)
  entry : int;  (** code index where execution starts *)
}

(** Procedure containing code index [pc]; raises [Not_found] for an index
    outside every procedure. *)
val proc_of_pc : program -> int -> proc

(** Look a procedure up by name. *)
val find_proc : program -> string -> proc

(** Multi-line disassembly listing with procedure headers. *)
val disassemble : program -> string

type builder

val create : unit -> builder

(** [proc b name body] appends a procedure; [name] doubles as a label for
    [call]/[jmp]. Raises if [name] was already defined. *)
val proc : builder -> string -> (builder -> unit) -> unit

(** [label b name] binds [name] to the next emitted instruction. Labels
    share one global namespace with procedure names. *)
val label : builder -> string -> unit

(** [data b words] copies [words] into the data segment and returns the
    base address of the allocation. *)
val data : builder -> int64 array -> int64

(** [reserve b n] allocates [n] zero-initialized words. *)
val reserve : builder -> int -> int64

(** Raw three-operand emit: [bin b op ~dst ra operand]. *)
val bin : builder -> Isa.binop -> dst:Isa.reg -> Isa.reg -> Isa.operand -> unit

(** Register-register forms, [dst <- a op b]. *)

val add : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val sub : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val mul : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val div : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val rem : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val and_ : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val or_ : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val xor : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val sll : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val srl : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val sra : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val cmpeq : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val cmplt : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit
val cmple : builder -> dst:Isa.reg -> Isa.reg -> Isa.reg -> unit

(** Register-immediate forms, [dst <- a op imm]. *)

val addi : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val subi : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val muli : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val divi : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val remi : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val andi : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val ori : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val xori : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val slli : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val srli : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val srai : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val cmpeqi : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val cmplti : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit
val cmplei : builder -> dst:Isa.reg -> Isa.reg -> int64 -> unit

val ldi : builder -> Isa.reg -> int64 -> unit

(** [mov b ~dst src]. *)
val mov : builder -> dst:Isa.reg -> Isa.reg -> unit

(** [ld b ~dst ~base ~off] / [st b ~src ~base ~off]; [off] in words. *)
val ld : builder -> dst:Isa.reg -> base:Isa.reg -> off:int -> unit

val st : builder -> src:Isa.reg -> base:Isa.reg -> off:int -> unit

(** [br b cond reg target_label]: branch when [reg cond 0]. *)
val br : builder -> Isa.cond -> Isa.reg -> string -> unit

val jmp : builder -> string -> unit
val call : builder -> string -> unit
val call_ind : builder -> Isa.reg -> unit
val ret : builder -> unit
val halt : builder -> unit
val nop : builder -> unit

(** [code_addr_of b name] emits [ldi] of the code index of label [name]
    into a register — for building indirect-call tables. The fix-up happens
    at assembly. *)
val code_addr_of : builder -> dst:Isa.reg -> string -> unit

(** [assemble b ~entry] resolves all labels. Raises [Failure] describing
    any undefined or duplicate label, or an [entry] that is not a
    procedure. *)
val assemble : builder -> entry:string -> program
